#include "util/flags.h"

#include <cstdlib>

#include "util/macros.h"

namespace endure {

void FlagParser::AddString(const std::string& name, const std::string& def,
                           const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.str_value = def;
  flags_[name] = std::move(f);
}

void FlagParser::AddInt(const std::string& name, int64_t def,
                        const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = def;
  flags_[name] = std::move(f);
}

void FlagParser::AddDouble(const std::string& name, double def,
                           const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.dbl_value = def;
  flags_[name] = std::move(f);
}

void FlagParser::AddBool(const std::string& name, bool def,
                         const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = def;
  flags_[name] = std::move(f);
}

Status FlagParser::Parse(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    bool have_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    Flag& flag = it->second;
    if (!have_value && flag.type != Type::kBool) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a value");
      }
      value = argv[++i];
      have_value = true;
    }
    char* end = nullptr;
    switch (flag.type) {
      case Type::kString:
        flag.str_value = value;
        break;
      case Type::kInt:
        flag.int_value = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          return Status::InvalidArgument("flag --" + name +
                                         " expects an integer");
        }
        break;
      case Type::kDouble:
        flag.dbl_value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          return Status::InvalidArgument("flag --" + name +
                                         " expects a number");
        }
        break;
      case Type::kBool:
        if (!have_value || value == "true" || value == "1") {
          flag.bool_value = true;
        } else if (value == "false" || value == "0") {
          flag.bool_value = false;
        } else {
          return Status::InvalidArgument("flag --" + name +
                                         " expects true/false");
        }
        break;
    }
    flag.set = true;
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::Lookup(const std::string& name,
                                           Type type) const {
  auto it = flags_.find(name);
  ENDURE_CHECK_MSG(it != flags_.end(), "unregistered flag");
  ENDURE_CHECK_MSG(it->second.type == type, "flag type mismatch");
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).str_value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return Lookup(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).dbl_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).bool_value;
}

bool FlagParser::IsSet(const std::string& name) const {
  auto it = flags_.find(name);
  ENDURE_CHECK_MSG(it != flags_.end(), "unregistered flag");
  return it->second.set;
}

std::string FlagParser::Usage() const {
  std::string out;
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    switch (flag.type) {
      case Type::kString:
        out += " (string, default: \"" + flag.str_value + "\")";
        break;
      case Type::kInt:
        out += " (int, default: " + std::to_string(flag.int_value) + ")";
        break;
      case Type::kDouble:
        out += " (double, default: " + std::to_string(flag.dbl_value) + ")";
        break;
      case Type::kBool:
        out += std::string(" (bool, default: ") +
               (flag.bool_value ? "true" : "false") + ")";
        break;
    }
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

StatusOr<std::vector<double>> ParseCsvDoubles(const std::string& csv,
                                              size_t expected_count) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string part =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    if (part.empty()) {
      return Status::InvalidArgument("empty component in '" + csv + "'");
    }
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    if (end == part.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad number '" + part + "'");
    }
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.size() != expected_count) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(expected_count) +
                                   " comma-separated values");
  }
  return out;
}

}  // namespace endure
