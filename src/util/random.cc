#include "util/random.h"

#include <cmath>

#include "util/macros.h"

namespace endure {
namespace {

// splitmix64: used to expand a single seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  ENDURE_DCHECK(lo <= hi);
  const uint64_t span = hi - lo + 1;
  if (span == 0) return Next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + r % span;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<double> Rng::SimplexByCounts(int dim, uint64_t max_count,
                                         std::vector<uint64_t>* counts) {
  ENDURE_CHECK(dim > 0);
  std::vector<uint64_t> c(dim);
  uint64_t total = 0;
  do {
    total = 0;
    for (int i = 0; i < dim; ++i) {
      c[i] = UniformInt(0, max_count);
      total += c[i];
    }
  } while (total == 0);  // resample the degenerate all-zero draw
  std::vector<double> p(dim);
  for (int i = 0; i < dim; ++i) {
    p[i] = static_cast<double>(c[i]) / static_cast<double>(total);
  }
  if (counts != nullptr) *counts = std::move(c);
  return p;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace endure
