#include "util/fault_injection.h"

namespace endure {

std::atomic<FaultInjector*> FaultInjector::current_{nullptr};

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSegmentOpen:
      return "segment open";
    case FaultSite::kSegmentWrite:
      return "segment write";
    case FaultSite::kSegmentFsync:
      return "segment fsync";
    case FaultSite::kSegmentRead:
      return "segment read";
    case FaultSite::kWalOpen:
      return "wal open";
    case FaultSite::kWalWrite:
      return "wal write";
    case FaultSite::kWalFsync:
      return "wal fsync";
    case FaultSite::kFileWrite:
      return "file write";
    case FaultSite::kFileFsync:
      return "file fsync";
    case FaultSite::kFileRename:
      return "file rename";
    case FaultSite::kDirSync:
      return "dir sync";
    case FaultSite::kAlloc:
      return "alloc";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultSite site, const Rule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& st = sites_[static_cast<size_t>(site)];
  st.rule = rule;
  st.armed = true;
  st.seen = 0;
  // fired deliberately survives re-arming: it counts lifetime faults at
  // the site, which is what test assertions want across phases.
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[static_cast<size_t>(site)].armed = false;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (SiteState& st : sites_) st.armed = false;
}

FaultOutcome FaultInjector::Evaluate(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& st = sites_[static_cast<size_t>(site)];
  if (!st.armed) return FaultOutcome{};
  uint64_t index = st.seen++;
  if (index < st.rule.skip) return FaultOutcome{};
  if (st.rule.count != UINT64_MAX &&
      index >= st.rule.skip + st.rule.count) {
    return FaultOutcome{};
  }
  ++st.fired;
  FaultOutcome out;
  out.err = st.rule.err;
  out.short_io = st.rule.short_io;
  out.corrupt = st.rule.corrupt;
  return out;
}

uint64_t FaultInjector::fired(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].fired;
}

uint64_t FaultInjector::seen(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_[static_cast<size_t>(site)].seen;
}

}  // namespace endure
