// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Deterministic pseudo-random utilities. All experiment drivers seed their
// Rng explicitly so that every figure/table in the reproduction is
// bit-for-bit repeatable across runs.

#ifndef ENDURE_UTIL_RANDOM_H_
#define ENDURE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace endure {

/// xoshiro256** PRNG: fast, high-quality, and stable across platforms
/// (unlike std::mt19937 distributions whose output is not standardized).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Samples a probability vector of dimension `dim` by drawing integer
  /// counts uniformly from [0, max_count] and normalizing — the exact
  /// sampling scheme of the paper's benchmark set B (Section 6). Returns
  /// the raw counts through `counts` when non-null.
  std::vector<double> SimplexByCounts(int dim, uint64_t max_count,
                                      std::vector<uint64_t>* counts = nullptr);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, i - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Splits off an independently-seeded child generator (for parallel or
  /// per-component streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace endure

#endif  // ENDURE_UTIL_RANDOM_H_
