#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace endure {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(std::initializer_list<double> cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(Fmt(c, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> w(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) w[c] = std::max(w[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      line += ' ' + cell + std::string(w[c] - cell.size(), ' ') + " |";
    }
    return line + '\n';
  };
  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(w[c] + 2, '-') + '+';
  }
  sep += '\n';

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) line += ',';
      line += cells[i];
    }
    return line + '\n';
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::string bar(title.size() + 10, '=');
  std::printf("\n%s\n==== %s ====\n%s\n", bar.c_str(), title.c_str(),
              bar.c_str());
}

}  // namespace endure
