// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Public facade of the storage engine: owns the page store, statistics and
// tree, and exposes the key-value API used by the examples and the
// experiment harness.

#ifndef ENDURE_LSM_DB_H_
#define ENDURE_LSM_DB_H_

#include <memory>
#include <optional>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/lsm_tree.h"
#include "util/env.h"
#include "util/status.h"

namespace endure::lsm {

/// An open database instance.
class DB {
 public:
  /// Opens a database; fails on invalid options (never aborts). Without
  /// Options::durability this is always a fresh, volatile instance. With
  /// it (file backend), storage_dir is a durable deployment root: an
  /// empty directory opens fresh and starts logging, while a directory
  /// holding a manifest is *recovered* — segments are adopted, runs
  /// rebuilt, the WAL replayed, and the persisted tuning (including a
  /// mid-flight migration) resumed. See docs/durability.md.
  static StatusOr<std::unique_ptr<DB>> Open(const Options& options);

  ENDURE_DISALLOW_COPY_AND_ASSIGN(DB);

  /// Inserts or updates a key. Non-OK means the write was not
  /// acknowledged; an I/O failure on the write path also latches the
  /// database read-only (see Health()).
  Status Put(Key key, Value value) { return tree_->Put(key, value); }

  /// Inserts or updates several keys with one WAL group commit (a single
  /// write + at most one fsync for the whole batch). Equivalent to
  /// individual Puts when durability is off. Non-OK means the batch was
  /// not acknowledged (a prefix may have been applied).
  Status PutBatch(const std::vector<std::pair<Key, Value>>& pairs) {
    return tree_->PutBatch(pairs);
  }

  /// Deletes a key. Error contract as Put.
  Status Delete(Key key) { return tree_->Delete(key); }

  /// Point lookup.
  std::optional<Value> Get(Key key) { return tree_->Get(key); }

  /// Range query over [lo, hi): live entries in key order, or the first
  /// read error (I/O or checksum) — never a silently truncated result.
  StatusOr<std::vector<Entry>> Scan(Key lo, Key hi) {
    return tree_->Scan(lo, hi);
  }

  /// Forces a memtable flush. On failure no entry is lost (the buffers
  /// keep everything unflushed) and the call may be retried.
  Status Flush() { return tree_->Flush(); }

  /// First unrecovered storage failure, or OK. Non-OK means the database
  /// is in read-only degraded mode: writes are rejected with this status,
  /// reads keep serving. Cleared only by reopening after the fault is
  /// fixed. See docs/operations.md.
  Status Health() const { return tree_->Health(); }

  /// Bulk loads strictly-ascending (key, value) pairs into an empty tree.
  Status BulkLoad(const std::vector<std::pair<Key, Value>>& sorted_pairs);

  /// Applies a new tuning to the open database in place (no rebuild):
  /// reconfigures the tree and — since a plain DB has no background
  /// maintenance — converges the structural migration synchronously
  /// before returning. Bloom filters of resident runs still migrate
  /// lazily, at their next compaction. See ShardedDB::ApplyTuning for
  /// the serving-system variant and the list of immutable knobs.
  Status ApplyTuning(const Options& new_options);

  /// Epoch/shape progress of the latest ApplyTuning (see
  /// MigrationProgress).
  MigrationProgress Progress() const { return tree_->Progress(); }

  /// Cumulative statistics since open.
  const Statistics& stats() const { return stats_; }

  /// Structural access for experiments and tests.
  const LsmTree& tree() const { return *tree_; }
  LsmTree* mutable_tree() { return tree_.get(); }

  /// The block cache, or null when Options::block_cache_bytes was 0 at
  /// open (exposed for tests and examples).
  BlockCache* block_cache() const { return cache_.get(); }

  const Options& options() const { return options_; }

  /// Simulates a *process* kill: the WAL writer is dropped without the
  /// final flush/sync and no shutdown checkpoint runs. Committed-but-
  /// unsynced write()s survive in the OS page cache (as they would a
  /// real process death) — this does not simulate losing unsynced page
  /// cache to a machine crash. The instance must only be destroyed
  /// afterwards. Test hook for the kill-point recovery suites.
  void CrashForTesting() { tree_->CrashForTesting(); }

 private:
  explicit DB(const Options& options);

  Options options_;
  Statistics stats_;
  /// Durable mode: exclusive LOCK-file guard on storage_dir, held for
  /// the instance's lifetime (one process per deployment).
  std::unique_ptr<FileLock> lock_;
  /// Durable kBackground mode with Options::shared_wal_flusher: the
  /// single thread driving the WAL's periodic fsyncs. Declared before
  /// tree_ so it outlives the writer registered with it.
  std::unique_ptr<WalFlushService> flush_service_;
  /// Block cache (null when disabled). Declared before store_ so it
  /// outlives the page store registered with it.
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<LsmTree> tree_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_DB_H_
