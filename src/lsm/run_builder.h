// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Builds immutable runs by streaming: entries are staged one page at a
// time and appended to a PageStore::SegmentWriter as soon as the page
// fills, so building a run of any size takes O(entries_per_page) working
// memory plus one buffered key-hash (8 bytes) per entry for the Bloom
// filter, which can only be sized once the exact entry count is known —
// the same trick RocksDB's full-filter builder uses. Fence pointers are
// collected incrementally (one key per page).

#ifndef ENDURE_LSM_RUN_BUILDER_H_
#define ENDURE_LSM_RUN_BUILDER_H_

#include <memory>
#include <vector>

#include "lsm/run.h"

namespace endure::lsm {

/// One-shot streaming builder; Finish() may be called once.
class RunBuilder {
 public:
  /// `bits_per_entry` sizes the run's Bloom filter (Monkey gives different
  /// budgets per level); `ctx` attributes the segment write (flush,
  /// compaction or bulk load).
  RunBuilder(PageStore* store, double bits_per_entry, IoContext ctx);

  /// Appends an entry; keys must be strictly ascending. Full pages are
  /// written out immediately — a failed page write surfaces here, after
  /// which the builder is dead (drop it; the partial segment is
  /// abandoned).
  Status Add(const Entry& e);

  /// Number of entries added so far.
  size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Builds the run. Requires at least one entry. On error (final page
  /// write or seal failed) the partial segment is abandoned when the
  /// builder is destroyed.
  StatusOr<std::shared_ptr<Run>> Finish();

 private:
  Status FlushPage();

  PageStore* store_;
  double bits_per_entry_;
  IoContext ctx_;
  std::unique_ptr<PageStore::SegmentWriter> writer_;  ///< opened lazily
  PageBuffer page_;                     ///< current partially-filled page
  std::vector<uint64_t> key_hashes_;    ///< deferred Bloom insertions
  std::vector<Key> first_keys_;         ///< fence pointer per page
  Key last_key_ = 0;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

/// Convenience: builds a run directly from sorted entries.
StatusOr<std::shared_ptr<Run>> BuildRun(
    PageStore* store, const std::vector<Entry>& sorted_entries,
    double bits_per_entry, IoContext ctx);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_RUN_BUILDER_H_
