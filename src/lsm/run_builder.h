// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Builds immutable runs: accumulates key-ascending entries, lays them out
// in pages, and constructs the per-run Bloom filter and fence pointers.

#ifndef ENDURE_LSM_RUN_BUILDER_H_
#define ENDURE_LSM_RUN_BUILDER_H_

#include <memory>
#include <vector>

#include "lsm/run.h"

namespace endure::lsm {

/// One-shot builder; Finish() may be called once.
class RunBuilder {
 public:
  /// `bits_per_entry` sizes the run's Bloom filter (Monkey gives different
  /// budgets per level); `ctx` attributes the segment write (flush,
  /// compaction or bulk load).
  RunBuilder(PageStore* store, double bits_per_entry, IoContext ctx);

  /// Appends an entry; keys must be strictly ascending.
  void Add(const Entry& e);

  /// Number of entries added so far.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Builds the run. Requires at least one entry.
  std::shared_ptr<Run> Finish();

 private:
  PageStore* store_;
  double bits_per_entry_;
  IoContext ctx_;
  std::vector<Entry> entries_;
  bool finished_ = false;
};

/// Convenience: builds a run directly from sorted entries.
std::shared_ptr<Run> BuildRun(PageStore* store,
                              const std::vector<Entry>& sorted_entries,
                              double bits_per_entry, IoContext ctx);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_RUN_BUILDER_H_
