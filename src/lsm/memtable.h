// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The write buffer (Level 0): a skiplist-backed memtable with a fixed
// entry capacity (m_buf / E). In-place updatable — the paper notes Level 0
// is the only mutable level — so a rewritten key replaces its older entry
// rather than stacking versions.

#ifndef ENDURE_LSM_MEMTABLE_H_
#define ENDURE_LSM_MEMTABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "lsm/entry.h"
#include "util/macros.h"
#include "util/random.h"

namespace endure::lsm {

/// Sorted in-memory container with O(log n) insert/lookup.
class SkipList {
 public:
  SkipList();
  ~SkipList();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(SkipList);

  /// Inserts or replaces (by key). Returns true when a new key was added,
  /// false when an existing key was overwritten.
  bool Upsert(const Entry& e);

  /// Finds the entry for `key`, or nullptr.
  const Entry* Find(Key key) const;

  /// Number of distinct keys stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iteration in ascending key order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list);
    bool Valid() const { return node_ != nullptr; }
    const Entry& entry() const;
    void Next();
    /// Positions at the first entry with key >= target.
    void Seek(Key target);
    /// Positions at the first entry.
    void SeekToFirst();

   private:
    const SkipList* list_;
    const void* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

  /// Copies out all entries in ascending key order.
  std::vector<Entry> Dump() const;

  /// Removes everything.
  void Clear();

 private:
  struct Node;
  static constexpr int kMaxHeight = 16;

  int RandomHeight();
  /// Finds the node with the largest key < key, per level, into prev[].
  Node* FindGreaterOrEqual(Key key, Node** prev) const;

  Node* head_;
  int height_ = 1;
  size_t size_ = 0;
  Rng rng_;
};

/// The memtable: a capacity-bounded skiplist.
class MemTable {
 public:
  /// `capacity` in entries (m_buf / E).
  explicit MemTable(uint64_t capacity);

  /// True when another insert of a *new* key would exceed capacity.
  bool IsFull() const { return list_.size() >= capacity_; }

  /// Inserts a value or tombstone. Callers flush on IsFull() before
  /// inserting more; Upsert on an existing key never grows the table.
  void Upsert(const Entry& e) { list_.Upsert(e); }

  /// Point lookup.
  const Entry* Find(Key key) const { return list_.Find(key); }

  size_t size() const { return list_.size(); }
  uint64_t capacity() const { return capacity_; }
  bool empty() const { return list_.empty(); }

  /// Retargets the seal threshold (live buffer resize). Entries are kept;
  /// if the table now holds >= capacity entries the caller seals or
  /// flushes it, exactly as if a write had just filled it.
  void set_capacity(uint64_t capacity) { capacity_ = capacity; }

  SkipList::Iterator NewIterator() const { return list_.NewIterator(); }

  /// All entries sorted by key (for flushing).
  std::vector<Entry> Dump() const { return list_.Dump(); }

  /// Empties the table after a flush.
  void Clear() { list_.Clear(); }

 private:
  uint64_t capacity_;
  SkipList list_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_MEMTABLE_H_
