// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The write buffer (Level 0): a skiplist-backed memtable with a fixed
// entry capacity (m_buf / E). Multi-versioned and insert-only: a rewritten
// key stacks a new version in front of the old one instead of updating in
// place, so lock-free snapshot readers holding an older sequence bound keep
// seeing the version that was visible when their snapshot was taken.
//
// Concurrency contract (LevelDB-style): exactly one writer at a time
// (serialized externally by the shard lock), any number of concurrent
// readers with no lock. Nodes are linked with release stores and traversed
// with acquire loads; nodes are never unlinked or mutated after linking.
// Clear() is exempt from this contract — it requires external exclusive
// access (no concurrent readers), so LsmTree never calls it on a memtable
// that has been published in a read snapshot.

#ifndef ENDURE_LSM_MEMTABLE_H_
#define ENDURE_LSM_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lsm/entry.h"
#include "util/macros.h"
#include "util/random.h"

namespace endure::lsm {

/// Sorted in-memory container with O(log n) insert/lookup. Orders nodes by
/// (key ascending, seq descending) — the canonical merge order — so all
/// versions of a key sit contiguously, newest first.
class SkipList {
 public:
  /// Sequence bound meaning "every version is visible".
  static constexpr SeqNum kMaxSeq = ~static_cast<SeqNum>(0);

  SkipList();
  ~SkipList();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(SkipList);

  /// Inserts a new version (insert-only; never overwrites existing nodes).
  /// Returns true when the key was not present before, false when this
  /// stacks a new version onto an existing key. Single writer only.
  bool Upsert(const Entry& e);

  /// Finds the newest version of `key`, or nullptr.
  const Entry* Find(Key key) const { return Find(key, kMaxSeq); }

  /// Finds the newest version of `key` with seq <= seq_bound, or nullptr.
  const Entry* Find(Key key, SeqNum seq_bound) const;

  /// Number of distinct keys stored (not versions).
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  /// Total number of versions stored (memory footprint proxy).
  size_t versions() const {
    return versions_.load(std::memory_order_relaxed);
  }
  bool empty() const { return size() == 0; }

  /// Forward iteration in ascending key order, yielding the newest version
  /// with seq <= bound for each key (keys with no visible version are
  /// skipped). The default bound yields the newest version of every key.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list, SeqNum bound = kMaxSeq);
    bool Valid() const { return node_ != nullptr; }
    const Entry& entry() const;
    void Next();
    /// Positions at the first visible entry with key >= target.
    void Seek(Key target);
    /// Positions at the first visible entry.
    void SeekToFirst();

   private:
    /// Advances node_ until it is the newest visible version of its key.
    /// Precondition: node_ is the first (newest) stored version of its key.
    void SkipToVisible();

    const SkipList* list_;
    const void* node_;
    SeqNum bound_;
  };

  Iterator NewIterator() const { return Iterator(this); }
  Iterator NewIterator(SeqNum bound) const { return Iterator(this, bound); }

  /// Copies out the newest version of every key in ascending key order.
  std::vector<Entry> Dump() const;

  /// Removes everything. Requires exclusive access (no concurrent readers,
  /// no snapshot may reference this list).
  void Clear();

 private:
  struct Node;
  static constexpr int kMaxHeight = 16;

  int RandomHeight();
  /// Finds the first node n with n.key > key, or (n.key == key and
  /// n.seq <= seq_bound) — i.e. the ordered position of (key, seq_bound)
  /// under (key asc, seq desc). Fills prev[] per level when non-null.
  Node* FindGreaterOrEqual(Key key, SeqNum seq_bound, Node** prev) const;

  Node* head_;
  std::atomic<int> height_{1};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> versions_{0};
  Rng rng_;
};

/// The memtable: a capacity-bounded skiplist.
class MemTable {
 public:
  /// `capacity` in entries (m_buf / E).
  explicit MemTable(uint64_t capacity);

  /// True when another insert of a *new* key would exceed capacity.
  bool IsFull() const { return list_.size() >= capacity_; }

  /// Inserts a value or tombstone version. Callers flush on IsFull()
  /// before inserting more; rewriting an existing key stacks a version but
  /// never grows the distinct-key count.
  void Upsert(const Entry& e) { list_.Upsert(e); }

  /// Point lookup (newest version).
  const Entry* Find(Key key) const { return list_.Find(key); }
  /// Point lookup bounded at `seq_bound` (snapshot reads).
  const Entry* Find(Key key, SeqNum seq_bound) const {
    return list_.Find(key, seq_bound);
  }

  size_t size() const { return list_.size(); }
  size_t versions() const { return list_.versions(); }
  uint64_t capacity() const { return capacity_; }
  bool empty() const { return list_.empty(); }

  /// Retargets the seal threshold (live buffer resize). Entries are kept;
  /// if the table now holds >= capacity entries the caller seals or
  /// flushes it, exactly as if a write had just filled it.
  void set_capacity(uint64_t capacity) { capacity_ = capacity; }

  SkipList::Iterator NewIterator() const { return list_.NewIterator(); }
  SkipList::Iterator NewIterator(SeqNum bound) const {
    return list_.NewIterator(bound);
  }

  /// Newest version of every key sorted ascending (for flushing).
  std::vector<Entry> Dump() const { return list_.Dump(); }

  /// Empties the table. Requires exclusive access; never call on a
  /// memtable that has been published in a read snapshot.
  void Clear() { list_.Clear(); }

 private:
  uint64_t capacity_;
  SkipList list_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_MEMTABLE_H_
