// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The versioned manifest: one small, atomically-replaced file per tree
// (per shard, for a ShardedDB) that records everything recovery needs
// besides the WAL — the run layout per level (segment ids, entry counts,
// per-run tuning epochs, Bloom budgets), the currently applied tuning,
// and the migration/sequence cursors. DB::Open on an existing directory
// reads the manifest, adopts the referenced segment files, rebuilds each
// run's Bloom filter and fence pointers from its pages, replays the WAL
// on top, and resumes — mid-migration if that is where the crash landed.
// docs/durability.md documents the byte-level format.

#ifndef ENDURE_LSM_MANIFEST_H_
#define ENDURE_LSM_MANIFEST_H_

#include <memory>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "lsm/page_store.h"
#include "lsm/run.h"

namespace endure::lsm {

/// Manifest format version this build writes; readers accept <= this.
inline constexpr uint32_t kManifestVersion = 1;

/// Conventional file names inside a durable tree's directory.
inline constexpr const char* kManifestFileName = "MANIFEST";
inline constexpr const char* kWalFileName = "wal.log";
/// Advisory-lock file at a deployment root (util::FileLock): a durable
/// directory may be open in at most one process.
inline constexpr const char* kLockFileName = "LOCK";

/// WAL record types the tree writes (util::WalWriter frames them).
/// kWalEntry's payload is one kEncodedEntryBytes entry encoding; readers
/// skip unknown types so the format can grow.
inline constexpr uint8_t kWalEntryRecord = 1;

/// What a MANIFEST file describes. Recorded in the manifest itself so
/// the two deployment layouts can never be confused, whatever crash
/// window the directory's other files were left in.
enum : uint8_t {
  kManifestKindTree = 0,         ///< one LsmTree (plain DB, or one shard)
  kManifestKindShardedRoot = 1,  ///< a ShardedDB deployment root
};

/// One resident run as recorded in the manifest.
struct ManifestRun {
  SegmentId segment = 0;            ///< stable seg_<id>.run file id
  uint64_t num_entries = 0;
  uint64_t tuning_epoch = 0;        ///< epoch the run was built under
  double bloom_bits_per_entry = 0;  ///< filter budget to rebuild with
};

/// Snapshot of a tree's durable state (everything but the memtables,
/// which live in the WAL).
struct ManifestData {
  // The applied tuning (the mutable Options knobs). Recovery resumes
  // with these — an ApplyTuning survives a restart.
  int size_ratio = 10;
  int policy = 0;             ///< CompactionPolicy
  uint64_t buffer_entries = 1024;
  double filter_bits_per_entry = 5.0;
  int filter_allocation = 0;  ///< FilterAllocation
  bool fence_pointer_skip = true;

  // Immutable geometry, validated against the opening Options.
  uint64_t entries_per_page = 4;
  int kind = kManifestKindTree;  ///< what this manifest describes
  int num_shards = 1;  ///< ShardedDB root manifest; 1 for a plain DB

  // Recovery cursors.
  uint64_t tuning_epoch = 0;
  bool migration_pending = false;  ///< resume AdvanceMigration if set
  uint64_t next_seq = 1;           ///< floor for the sequence counter
  uint64_t next_file_id = 1;       ///< floor for segment file ids

  /// levels[i] holds level i+1's runs, newest first (the tree's order).
  std::vector<std::vector<ManifestRun>> levels;

  /// Folds the tuning fields into `opts` (the recovered deployment keeps
  /// its persisted tuning regardless of what the caller passed).
  void ApplyTuningTo(Options* opts) const;

  /// Records `opts`'s mutable tuning knobs.
  void RecordTuningFrom(const Options& opts);
};

/// Serializes and atomically publishes `data` at `path` (temp + rename +
/// directory fsync; a crash leaves either the old or the new manifest).
Status WriteManifest(const std::string& path, const ManifestData& data);

/// Reads and verifies (magic, version, CRC) a manifest.
StatusOr<ManifestData> ReadManifest(const std::string& path);

/// Rebuilds one run from its (already adopted) segment: reads every page
/// under IoContext::kRecovery, reconstructing the Bloom filter at the
/// recorded budget and the fence pointers from page first-keys. The
/// rebuilt run is byte-identical in behaviour to the pre-crash one (the
/// filter is deterministic in the key set and budget). Reading every page
/// doubles as the recovery scrub: with FilePageStore's scrub_on_recovery
/// set, a damaged page surfaces here as Corruption and the open fails
/// instead of serving bad data.
StatusOr<std::shared_ptr<Run>> RebuildRun(PageStore* store,
                                          const ManifestRun& meta,
                                          uint64_t entries_per_page);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_MANIFEST_H_
