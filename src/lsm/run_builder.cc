#include "lsm/run_builder.h"

namespace endure::lsm {

RunBuilder::RunBuilder(PageStore* store, double bits_per_entry, IoContext ctx)
    : store_(store), bits_per_entry_(bits_per_entry), ctx_(ctx) {
  ENDURE_CHECK(store != nullptr);
}

void RunBuilder::Add(const Entry& e) {
  ENDURE_CHECK_MSG(!finished_, "builder already finished");
  if (!entries_.empty()) {
    ENDURE_CHECK_MSG(e.key > entries_.back().key,
                     "run keys must be strictly ascending");
  }
  entries_.push_back(e);
}

std::shared_ptr<Run> RunBuilder::Finish() {
  ENDURE_CHECK_MSG(!finished_, "builder already finished");
  ENDURE_CHECK_MSG(!entries_.empty(), "cannot build an empty run");
  finished_ = true;

  const uint64_t per_page = store_->entries_per_page();
  auto bloom = std::make_unique<BloomFilter>(entries_.size(),
                                             bits_per_entry_);
  std::vector<Key> first_keys;
  first_keys.reserve(entries_.size() / per_page + 1);
  for (size_t i = 0; i < entries_.size(); ++i) {
    bloom->Add(entries_[i].key);
    if (i % per_page == 0) first_keys.push_back(entries_[i].key);
  }
  auto fences = std::make_unique<FencePointers>(std::move(first_keys),
                                                entries_.back().key);
  const SegmentId segment = store_->WriteSegment(entries_, ctx_);
  auto run = std::make_shared<Run>(store_, segment, std::move(bloom),
                                   std::move(fences), entries_.size());
  entries_.clear();
  entries_.shrink_to_fit();
  return run;
}

std::shared_ptr<Run> BuildRun(PageStore* store,
                              const std::vector<Entry>& sorted_entries,
                              double bits_per_entry, IoContext ctx) {
  RunBuilder builder(store, bits_per_entry, ctx);
  for (const Entry& e : sorted_entries) builder.Add(e);
  return builder.Finish();
}

}  // namespace endure::lsm
