#include "lsm/run_builder.h"

namespace endure::lsm {

RunBuilder::RunBuilder(PageStore* store, double bits_per_entry, IoContext ctx)
    : store_(store),
      bits_per_entry_(bits_per_entry),
      ctx_(ctx),
      page_(store != nullptr ? store->entries_per_page() : 0) {
  ENDURE_CHECK(store != nullptr);
}

Status RunBuilder::Add(const Entry& e) {
  ENDURE_CHECK_MSG(!finished_, "builder already finished");
  ENDURE_CHECK_MSG(num_entries_ == 0 || e.key > last_key_,
                   "run keys must be strictly ascending");
  if (page_.empty()) first_keys_.push_back(e.key);
  page_.data()[page_.size()] = e;
  page_.set_size(page_.size() + 1);
  last_key_ = e.key;
  ++num_entries_;
  key_hashes_.push_back(BloomFilter::KeyHash(e.key));
  if (page_.size() == page_.capacity()) return FlushPage();
  return Status::OK();
}

Status RunBuilder::FlushPage() {
  if (page_.empty()) return Status::OK();
  if (writer_ == nullptr) writer_ = store_->NewSegmentWriter(ctx_);
  ENDURE_RETURN_IF_ERROR(writer_->AppendPage(page_.data(), page_.size()));
  page_.set_size(0);
  return Status::OK();
}

StatusOr<std::shared_ptr<Run>> RunBuilder::Finish() {
  ENDURE_CHECK_MSG(!finished_, "builder already finished");
  ENDURE_CHECK_MSG(num_entries_ > 0, "cannot build an empty run");
  finished_ = true;

  ENDURE_RETURN_IF_ERROR(FlushPage());
  StatusOr<SegmentId> sealed = writer_->Seal();
  ENDURE_RETURN_IF_ERROR(sealed.status());
  const SegmentId segment = *sealed;
  writer_.reset();

  // The filter is sized on the exact entry count, only known now; insert
  // the hashes buffered while the pages streamed out.
  auto bloom = std::make_unique<BloomFilter>(num_entries_, bits_per_entry_);
  for (const uint64_t h : key_hashes_) bloom->AddHash(h);
  key_hashes_.clear();
  key_hashes_.shrink_to_fit();

  auto fences = std::make_unique<FencePointers>(std::move(first_keys_),
                                                last_key_);
  return std::make_shared<Run>(store_, segment, std::move(bloom),
                               std::move(fences), num_entries_,
                               bits_per_entry_);
}

StatusOr<std::shared_ptr<Run>> BuildRun(
    PageStore* store, const std::vector<Entry>& sorted_entries,
    double bits_per_entry, IoContext ctx) {
  RunBuilder builder(store, bits_per_entry, ctx);
  for (const Entry& e : sorted_entries) {
    ENDURE_RETURN_IF_ERROR(builder.Add(e));
  }
  return builder.Finish();
}

}  // namespace endure::lsm
