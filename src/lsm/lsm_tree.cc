#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>

#include "lsm/merge_iterator.h"
#include "lsm/run_builder.h"
#include "util/env.h"
#include "util/fault_injection.h"

namespace endure::lsm {
namespace {

/// Streams the memtable's entries in [lo, hi) without copying them out,
/// bounded at `seq_bound` (each key yields its newest version with
/// seq <= bound — the snapshot-read filter).
class MemtableRangeStream final : public EntryStream {
 public:
  MemtableRangeStream(const MemTable& memtable, Key lo, Key hi,
                      SeqNum seq_bound)
      : it_(memtable.NewIterator(seq_bound)), hi_(hi) {
    it_.Seek(lo);
  }
  bool Valid() const override { return it_.Valid() && it_.entry().key < hi_; }
  const Entry& entry() const override { return it_.entry(); }
  void Next() override { it_.Next(); }

 private:
  SkipList::Iterator it_;
  Key hi_;
};

}  // namespace

LsmTree::LsmTree(const Options& options, PageStore* store, Statistics* stats)
    : opts_(options),
      store_(store),
      stats_(stats),
      active_(std::make_shared<MemTable>(options.buffer_entries)) {
  ENDURE_CHECK_MSG(opts_.Validate().ok(), "invalid Options");
  ENDURE_CHECK(store != nullptr && stats != nullptr);
  ENDURE_CHECK(store->entries_per_page() == opts_.entries_per_page);
  if (opts_.durability) {
    file_store_ = dynamic_cast<FilePageStore*>(store);
    ENDURE_CHECK_MSG(file_store_ != nullptr && file_store_->persistent(),
                     "durability requires a persistent FilePageStore");
  }
  PublishSnapshot();  // readers may start before the first write
}

void LsmTree::PublishSnapshot() {
  auto snap = std::make_shared<ReadSnapshot>();
  snap->active = active_;
  snap->sealed = sealed_;
  snap->levels = levels_;
  snap->epoch = tuning_epoch_;
  snap->fence_pointer_skip = opts_.fence_pointer_skip;
  snapshot_.store(std::move(snap), std::memory_order_release);
}

void LsmTree::BumpVisible(SeqNum seq) {
  // Single writer: a plain read-modify-write is race-free, and readers
  // only need the release pairing with their acquire load.
  if (seq > visible_seq_.load(std::memory_order_relaxed)) {
    visible_seq_.store(seq, std::memory_order_release);
  }
}

void LsmTree::SetBufferCapacity(uint64_t entries) {
  buffer_capacity_override_ = std::max<uint64_t>(1, entries);
  active_->set_capacity(buffer_capacity_override_);
}

uint64_t LsmTree::LevelCapacity(int level) const {
  ENDURE_CHECK(level >= 1);
  const double cap = static_cast<double>(opts_.buffer_entries) *
                     (opts_.size_ratio - 1) *
                     std::pow(opts_.size_ratio, level - 1);
  return static_cast<uint64_t>(cap);
}

int LsmTree::ProjectedDepth(uint64_t entries) const {
  // Smallest L with sum of level capacities >= entries.
  int level = 1;
  uint64_t cumulative = 0;
  while (true) {
    cumulative += LevelCapacity(level);
    if (cumulative >= entries || level >= 64) return level;
    ++level;
  }
}

double LsmTree::FilterBitsForLevel(int level, int projected_depth) const {
  const int depth = std::max(level, projected_depth);
  MonkeyAllocator alloc(opts_.filter_bits_per_entry, opts_.size_ratio, depth,
                        opts_.filter_allocation);
  return alloc.BitsPerEntry(level);
}

bool LsmTree::NothingBelow(int level) const {
  for (size_t i = static_cast<size_t>(level); i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return false;
  }
  return true;
}

void LsmTree::EnsureLevel(int level) {
  if (static_cast<int>(levels_.size()) < level) levels_.resize(level);
}

Status LsmTree::MaintainAfterWrite() {
  if (!active_->IsFull()) return Status::OK();
  if (opts_.background_maintenance) {
    // Hand the full buffer to maintenance instead of flushing inline. If
    // maintenance has fallen behind (the previous sealed buffer is still
    // pending), either the owner stalls writers upstream
    // (deferred_backpressure_: the active buffer absorbs over capacity
    // until the scheduler drains the debt) or we flush inline here —
    // backpressure that keeps at most one sealed buffer alive.
    if (sealed_ != nullptr) {
      if (deferred_backpressure_) return Status::OK();
      ENDURE_RETURN_IF_ERROR(FlushSealedMemtable());
    }
    SealMemtable();
    return Status::OK();
  }
  return Flush();
}

void LsmTree::LatchBackgroundError(const Status& error) {
  if (error.ok()) return;
  std::lock_guard<std::mutex> lock(latch_mu_);
  if (!background_error_.ok()) return;  // first error wins
  background_error_ = error;
  error_latched_.store(true, std::memory_order_release);
  ++stats_->read_only_transitions;
}

Status LsmTree::Health() const {
  if (!error_latched_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(latch_mu_);
  return background_error_;
}

Status LsmTree::Write(const Entry& e) {
  ENDURE_RETURN_IF_ERROR(Health());
  ++stats_->writes;
  active_->Upsert(e);
  BumpVisible(e.seq);
  Status s = MaintainAfterWrite();
  // Log after applying: if the write just triggered a flush, the entry is
  // already covered by the manifest the checkpoint published, and the
  // extra WAL record is a benign duplicate at replay (same seq, same
  // value). The invariant an acknowledged write relies on is that by the
  // time this returns it is in memtable ∪ runs and in WAL ∪ manifest.
  if (s.ok() && wal_ != nullptr) {
    StageWalRecord(e);
    s = CommitWal();
  }
  // A foreground write-path I/O failure (inline flush, checkpoint, WAL
  // commit) latches: the entry may be applied but is not logged, so the
  // tree must stop acknowledging writes it cannot make durable.
  LatchBackgroundError(s);
  return s;
}

Status LsmTree::Put(Key key, Value value) {
  return Write(Entry{key, next_seq_++, value, EntryType::kValue});
}

Status LsmTree::PutBatch(const std::vector<std::pair<Key, Value>>& pairs) {
  ENDURE_RETURN_IF_ERROR(Health());
  for (const auto& [key, value] : pairs) {
    const Entry e{key, next_seq_++, value, EntryType::kValue};
    ++stats_->writes;
    active_->Upsert(e);
    BumpVisible(e.seq);
    const Status s = MaintainAfterWrite();
    if (!s.ok()) {
      LatchBackgroundError(s);
      return s;  // a prefix of the batch is applied but unacknowledged
    }
    // Records staged before a mid-batch flush are absorbed into that
    // checkpoint's WAL snapshot (they are already applied); the rest
    // commit in one group below.
    if (wal_ != nullptr) StageWalRecord(e);
  }
  const Status s = CommitWal();
  LatchBackgroundError(s);
  return s;
}

Status LsmTree::Delete(Key key) {
  return Write(Entry{key, next_seq_++, 0, EntryType::kTombstone});
}

void LsmTree::SealMemtable() {
  ENDURE_CHECK(sealed_ == nullptr);
  sealed_ = std::move(active_);
  active_ = std::make_shared<MemTable>(EffectiveBufferCapacity());
  PublishSnapshot();
}

Status LsmTree::FlushBuffer(const MemTable& buffer) {
  ++stats_->flushes;
  const int depth = std::max(DeepestLevel(), 1);
  // Stream straight out of the skiplist; no intermediate dump vector.
  RunBuilder builder(store_, FilterBitsForLevel(1, depth), IoContext::kFlush);
  for (SkipList::Iterator it = buffer.NewIterator(); it.Valid(); it.Next()) {
    ENDURE_RETURN_IF_ERROR(builder.Add(it.entry()));
  }
  StatusOr<std::shared_ptr<Run>> run_or = builder.Finish();
  ENDURE_RETURN_IF_ERROR(run_or.status());
  std::shared_ptr<Run> run = std::move(*run_or);
  Stamp(run);
  return AddRunToLevel(std::move(run), 1);
}

Status LsmTree::FlushSealedInternal() {
  // Detach before flushing so the invariant "sealed_ is full" never sees
  // a half-flushed buffer; entries stay reachable via the new run. On
  // failure AddRunToLevel guarantees nothing new is resident, so putting
  // the buffer back makes the failed flush a clean no-op.
  std::shared_ptr<MemTable> buffer = std::move(sealed_);
  const Status s = FlushBuffer(*buffer);
  if (!s.ok()) sealed_ = std::move(buffer);
  // No snapshot is published mid-flush, so readers saw the pre-flush
  // view throughout: within any one snapshot the buffer and its run
  // never coexist. Publish the outcome (success or exact rollback) once.
  PublishSnapshot();
  return s;
}

Status LsmTree::FlushSealedMemtable() {
  ENDURE_RETURN_IF_ERROR(Health());
  if (sealed_ == nullptr) return Status::OK();
  ENDURE_RETURN_IF_ERROR(FlushSealedInternal());
  return CheckpointIfDurable();
}

Status LsmTree::Flush() {
  ENDURE_RETURN_IF_ERROR(Health());
  // Age order: the sealed buffer predates the active one, so its run must
  // land on level 1 first (runs within a level are newest-first).
  const bool had_work = sealed_ != nullptr || !active_->empty();
  if (sealed_ != nullptr) ENDURE_RETURN_IF_ERROR(FlushSealedInternal());
  if (!active_->empty()) {
    const Status s = FlushBuffer(*active_);
    if (s.ok()) {
      // Swap, never Clear: concurrent snapshot readers may still hold
      // the old buffer — its entries stay readable there until the last
      // reader drops it, and in the new run for everyone after.
      active_ = std::make_shared<MemTable>(EffectiveBufferCapacity());
    }
    PublishSnapshot();
    ENDURE_RETURN_IF_ERROR(s);
  }
  if (had_work) ENDURE_RETURN_IF_ERROR(CheckpointIfDurable());
  return Status::OK();
}

Status LsmTree::AddRunToLevel(std::shared_ptr<Run> run, int level) {
  EnsureLevel(level);
  auto& runs = levels_[level - 1];

  // Lazy leveling: the current bottom level behaves like leveling (one
  // eagerly-merged run); all levels above it tier. The rule is
  // self-organizing — when data is pushed deeper, the old bottom starts
  // tiering automatically.
  const bool act_as_leveling =
      opts_.policy == CompactionPolicy::kLeveling ||
      (opts_.policy == CompactionPolicy::kLazyLeveling &&
       NothingBelow(level));

  // Failure discipline throughout: resident runs are only cleared AFTER
  // every fallible step that replaces them has succeeded, so an error at
  // any point leaves the level exactly as it was and the incoming run
  // un-installed (its entries stay owned by the caller's source).
  // migration_pending_ is raised on the way out so maintenance retries
  // the consolidation once the fault clears.
  if (act_as_leveling) {
    // Greedy sort-merge with the resident run(s). Pure leveling keeps one
    // run per level; under lazy leveling a level that just became the
    // bottom may still hold several tiered runs — fold them all in.
    if (!runs.empty()) {
      ++stats_->compactions;
      const bool drop = NothingBelow(level);
      const int depth = std::max(DeepestLevel(),
                                 ProjectedDepth(TotalEntries()));
      std::vector<std::shared_ptr<Run>> inputs;
      inputs.reserve(runs.size() + 1);
      inputs.push_back(run);
      for (auto& r : runs) inputs.push_back(r);  // newest first already
      StatusOr<std::shared_ptr<Run>> merged_or = MergeRuns(
          store_, inputs, FilterBitsForLevel(level, depth), drop);
      if (!merged_or.ok()) {
        migration_pending_ = true;
        return merged_or.status();
      }
      std::shared_ptr<Run> merged = std::move(*merged_or);
      if (merged == nullptr) {  // everything consolidated away
        runs.clear();
        return Status::OK();
      }
      Stamp(merged);
      if (merged->num_entries() > LevelCapacity(level)) {
        // Overflow: the merged run descends. Recurse while the old runs
        // are still resident — only a fully-installed cascade may retire
        // them. (The transient double residency is invisible: no reads
        // interleave, and manifests publish only after the cascade.)
        // The recursion may grow levels_ and reallocate it, so `runs` is
        // dangling afterwards — re-index instead of touching it.
        const Status s = AddRunToLevel(std::move(merged), level + 1);
        if (!s.ok()) {
          migration_pending_ = true;
          return s;
        }
        levels_[level - 1].clear();
        return Status::OK();
      }
      runs.clear();
      runs.push_back(std::move(merged));
      return Status::OK();
    }
    // Overflow of a lone incoming run: it moves down and merges there.
    if (run->num_entries() > LevelCapacity(level)) {
      return AddRunToLevel(std::move(run), level + 1);
    }
    runs.push_back(std::move(run));
    return Status::OK();
  }

  // Tiering: accumulate runs; the T-th arrival merges the whole level into
  // one run on the next level down.
  runs.insert(runs.begin(), std::move(run));  // newest first
  if (static_cast<int>(runs.size()) >= opts_.size_ratio) {
    ++stats_->compactions;
    const bool drop = NothingBelow(level);
    const int depth =
        std::max(DeepestLevel(), ProjectedDepth(TotalEntries()));
    StatusOr<std::shared_ptr<Run>> merged_or = MergeRuns(
        store_, runs, FilterBitsForLevel(level + 1, depth), drop);
    Status s = merged_or.status();
    if (s.ok() && *merged_or != nullptr) {
      Stamp(*merged_or);
      s = AddRunToLevel(std::move(*merged_or), level + 1);
    }
    // The recursion above may grow levels_ and reallocate it, so `runs`
    // is dangling here — re-index this level for every access below.
    if (!s.ok()) {
      // Take the incoming back out before reporting failure: it must not
      // be resident here AND restored by the caller (double residency
      // would record the segment twice in the next manifest).
      auto& lvl = levels_[level - 1];
      lvl.erase(lvl.begin());
      migration_pending_ = true;
      return s;
    }
    levels_[level - 1].clear();
  }
  return Status::OK();
}

std::optional<Value> LsmTree::Get(Key key) {
  ++stats_->gets;
  // Snapshot FIRST, visible bound SECOND (both acquire): the bound then
  // covers every sequence resident in the snapshot's sealed buffer and
  // runs (they were visible before publication), and filtering the
  // memtables at the bound yields exactly the applied prefix — see the
  // ReadSnapshot invariant. No lock, no retry loop.
  const std::shared_ptr<const ReadSnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  const SeqNum bound = visible_seq_.load(std::memory_order_acquire);
  ++stats_->snapshot_acquires;
  if (!snap->active->empty()) {
    if (const Entry* e = snap->active->Find(key, bound); e != nullptr) {
      if (e->is_tombstone()) return std::nullopt;
      return e->value;
    }
  }
  // The sealed buffer is older than the active one but newer than any run.
  if (snap->sealed != nullptr) {
    if (const Entry* e = snap->sealed->Find(key, bound); e != nullptr) {
      if (e->is_tombstone()) return std::nullopt;
      return e->value;
    }
  }
  for (const auto& runs : snap->levels) {
    for (const auto& run : runs) {  // newest first
      Status io_status;
      const Entry* e = run->Get(key, snap->fence_pointer_skip, &io_status);
      if (!io_status.ok()) {
        // An unreadable or corrupt page: latch (fail-safe degraded mode)
        // and miss rather than continue to older runs — a deeper hit
        // could be a stale value the damaged page shadows.
        LatchBackgroundError(io_status);
        return std::nullopt;
      }
      if (e != nullptr) {
        if (e->is_tombstone()) return std::nullopt;
        return e->value;
      }
    }
  }
  return std::nullopt;
}

StatusOr<std::vector<Entry>> LsmTree::Scan(Key lo, Key hi) {
  ++stats_->range_queries;
  // Same lock-free protocol as Get(): snapshot, then visible bound.
  const std::shared_ptr<const ReadSnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  const SeqNum bound = visible_seq_.load(std::memory_order_acquire);
  ++stats_->snapshot_acquires;

  // Gather qualifying run iterators (adapters live on this frame; reserve
  // keeps their addresses stable for the non-owning merge).
  size_t total_runs = 0;
  for (const auto& runs : snap->levels) total_runs += runs.size();
  std::vector<StreamAdapter<Run::Iterator>> run_streams;
  run_streams.reserve(total_runs);
  MemtableRangeStream memtable_stream(*snap->active, lo, hi, bound);
  std::vector<EntryStream*> heads;
  heads.reserve(total_runs + 2);
  // Active buffer first (rank 0 = most recent source), then the sealed
  // buffer (rank 1, older than active but newer than any run); no I/O.
  if (memtable_stream.Valid()) heads.push_back(&memtable_stream);
  std::optional<MemtableRangeStream> sealed_stream;
  if (snap->sealed != nullptr) {
    sealed_stream.emplace(*snap->sealed, lo, hi, bound);
    if (sealed_stream->Valid()) heads.push_back(&*sealed_stream);
  }

  for (const auto& runs : snap->levels) {
    for (const auto& run : runs) {
      std::optional<Run::Iterator> it = run->NewRangeIterator(lo, hi);
      if (it.has_value()) {
        run_streams.emplace_back(std::move(*it));
        heads.push_back(&run_streams.back());
      } else if (!snap->fence_pointer_skip) {
        // Model-faithful mode: the analytical cost model charges one seek
        // per run regardless of overlap; emulate the blind seek by reading
        // the run's first page.
        run->BlindSeek();
      }
    }
  }

  // Drain, trimming to [lo, hi) on the fly: run iterators are page-aligned
  // and may cover keys outside the range. The merged stream is sorted, so
  // the first key >= hi ends the scan — every page whose first key is
  // inside the range has been read by then, leaving the page-read count
  // identical to a full drain.
  std::vector<Entry> out;
  if (heads.size() == 1) {
    // Fast path: one qualifying source (the common case under leveling) —
    // no need to pay the k-way merge's per-key scans.
    EntryStream* s = heads.front();
    for (; s->Valid(); s->Next()) {
      const Entry& e = s->entry();
      if (e.key < lo) continue;
      if (e.key >= hi) break;
      if (!e.is_tombstone()) out.push_back(e);
    }
  } else {
    MergeIterator merge(std::move(heads));
    for (; merge.Valid(); merge.Next()) {
      const Entry& e = merge.entry();
      if (e.key < lo) continue;
      if (e.key >= hi) break;
      if (!e.is_tombstone()) out.push_back(e);
    }
  }
  // A run iterator that hit an I/O or checksum error looks exhausted to
  // the merge (it dies in place); a truncated result would read as
  // deleted keys, so fail the scan — and latch, so the fault does not go
  // unnoticed engine-wide.
  for (const auto& stream : run_streams) {
    if (!stream.iter().status().ok()) {
      LatchBackgroundError(stream.iter().status());
      return stream.iter().status();
    }
  }
  return out;
}

Status LsmTree::BulkLoad(const std::vector<Entry>& sorted_entries) {
  ENDURE_CHECK_MSG(levels_.empty() && active_->empty() && sealed_ == nullptr,
                   "BulkLoad requires an empty tree");
  ENDURE_RETURN_IF_ERROR(Health());
  if (sorted_entries.empty()) return Status::OK();
  SeqNum max_seq = sorted_entries.front().seq;
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    ENDURE_CHECK_MSG(sorted_entries[i - 1].key < sorted_entries[i].key,
                     "bulk-load keys must be strictly ascending");
    max_seq = std::max(max_seq, sorted_entries[i].seq);
  }

  const uint64_t n = sorted_entries.size();
  const int depth = ProjectedDepth(n);
  EnsureLevel(depth);

  // Fill bottom-up (a settled tree keeps its mass deep).
  std::vector<uint64_t> quota(depth + 1, 0);  // 1-based
  uint64_t remaining = n;
  for (int level = depth; level >= 1 && remaining > 0; --level) {
    quota[level] = std::min<uint64_t>(LevelCapacity(level), remaining);
    remaining -= quota[level];
  }
  ENDURE_CHECK(remaining == 0);

  // Stride scheduling: level ℓ's j-th entry has ideal position
  // (2j+1)/(2·quota[ℓ]) of the input, so each level's run samples the key
  // domain evenly. A small heap orders the next pick of every level by
  // ideal position — O(n log depth) overall instead of the O(n·depth)
  // per-entry credit scan, and each entry streams directly into its
  // level's RunBuilder (no per-level staging vectors).
  struct Cursor {
    uint64_t taken;
    uint64_t quota;
    int level;
  };
  struct PicksLater {
    bool operator()(const Cursor& a, const Cursor& b) const {
      // position(c) = (2·taken + 1) / (2·quota); compare cross-multiplied.
      return static_cast<unsigned __int128>(2 * a.taken + 1) * b.quota >
             static_cast<unsigned __int128>(2 * b.taken + 1) * a.quota;
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, PicksLater> next_pick;
  std::vector<std::unique_ptr<RunBuilder>> builders(depth + 1);
  for (int level = 1; level <= depth; ++level) {
    if (quota[level] == 0) continue;
    builders[level] = std::make_unique<RunBuilder>(
        store_, FilterBitsForLevel(level, depth), IoContext::kBulkLoad);
    next_pick.push(Cursor{0, quota[level], level});
  }

  for (const Entry& e : sorted_entries) {
    ENDURE_CHECK(!next_pick.empty());
    Cursor c = next_pick.top();
    next_pick.pop();
    // On failure the builders' destructors abandon every partial
    // segment and levels_ holds nothing yet — the tree stays empty.
    ENDURE_RETURN_IF_ERROR(builders[c.level]->Add(e));
    if (++c.taken < c.quota) next_pick.push(c);
  }

  // Finish every builder before installing anything: all-or-nothing, so
  // a Seal failure cannot leave a half-loaded tree.
  std::vector<std::shared_ptr<Run>> built(depth + 1);
  for (int level = 1; level <= depth; ++level) {
    if (builders[level] == nullptr) continue;
    StatusOr<std::shared_ptr<Run>> run_or = builders[level]->Finish();
    ENDURE_RETURN_IF_ERROR(run_or.status());
    built[level] = std::move(*run_or);
  }
  for (int level = 1; level <= depth; ++level) {
    if (built[level] == nullptr) continue;
    Stamp(built[level]);
    levels_[level - 1].push_back(std::move(built[level]));
  }
  // The loaded entries carry caller-chosen sequences; make them all
  // visible to snapshot readers before publishing the runs.
  BumpVisible(max_seq);
  PublishSnapshot();
  return CheckpointIfDurable();
}

Status LsmTree::Reconfigure(const Options& new_options) {
  ENDURE_RETURN_IF_ERROR(Health());
  ENDURE_RETURN_IF_ERROR(new_options.Validate());
  if (new_options.entries_per_page != opts_.entries_per_page) {
    return Status::InvalidArgument(
        "entries_per_page is fixed at open (page geometry is shared with "
        "the page store)");
  }
  if (new_options.backend != opts_.backend ||
      new_options.storage_dir != opts_.storage_dir) {
    return Status::InvalidArgument(
        "storage backend and directory cannot change on a live tree");
  }
  if (new_options.background_maintenance != opts_.background_maintenance) {
    return Status::InvalidArgument(
        "background_maintenance cannot change on a live tree");
  }
  if (new_options.durability != opts_.durability ||
      new_options.wal_sync_mode != opts_.wal_sync_mode ||
      new_options.wal_sync_interval_ms != opts_.wal_sync_interval_ms ||
      new_options.shared_wal_flusher != opts_.shared_wal_flusher) {
    return Status::InvalidArgument(
        "durability and WAL sync settings cannot change on a live tree");
  }
  if (new_options.verify_checksums != opts_.verify_checksums ||
      new_options.scrub_on_recovery != opts_.scrub_on_recovery) {
    return Status::InvalidArgument(
        "checksum verification settings cannot change on a live tree "
        "(they are bound to the page store at open)");
  }

  opts_ = new_options;
  ++tuning_epoch_;
  ++stats_->reconfigurations;
  // Conservatively assume the structure must be revisited; the first
  // AdvanceMigration call that finds every level conforming clears it.
  migration_pending_ = true;

  // Retarget the seal threshold; an over-full buffer is handled like a
  // filling write, except that Reconfigure itself never flushes in
  // background mode — it stays a cheap foreground call. If a sealed
  // buffer is already pending, the active one keeps serving over
  // threshold until the next write's backpressure reseals it (capacity
  // is a seal threshold, not a hard bound). An explicit retune also
  // supersedes any arbiter override of the threshold.
  buffer_capacity_override_ = 0;
  active_->set_capacity(opts_.buffer_entries);
  if (active_->IsFull()) {
    if (!opts_.background_maintenance) {
      ENDURE_RETURN_IF_ERROR(Flush());
    } else if (sealed_ == nullptr) {
      SealMemtable();
    }
  }
  // Republish even when nothing sealed or flushed: the snapshot carries
  // the tuning epoch and the fence-skip flag readers consult.
  PublishSnapshot();
  // Persist the new tuning immediately: a retune must survive a crash
  // that lands before the first post-retune flush. The memtables'
  // contents are unchanged (a seal only moves the buffer aside, and an
  // inline flush checkpointed already), so the WAL needs no rewrite. On
  // failure the new tuning is applied in memory but not persisted — the
  // caller may retry (the next successful checkpoint publishes it too).
  return PublishManifestIfDurable();
}

bool LsmTree::LevelConforms(int level) const {
  const auto& runs = levels_[level - 1];
  if (runs.empty()) return true;
  const bool act_as_leveling =
      opts_.policy == CompactionPolicy::kLeveling ||
      (opts_.policy == CompactionPolicy::kLazyLeveling &&
       NothingBelow(level));
  if (act_as_leveling) {
    if (runs.size() > 1) return false;
    return runs.front()->num_entries() <= LevelCapacity(level);
  }
  // Tiering-like levels trigger a merge on the T-th run's arrival, so a
  // conforming level holds at most T-1 runs (entry mass moves down by run
  // count, not capacity).
  return static_cast<int>(runs.size()) < opts_.size_ratio;
}

bool LsmTree::MigrationPending() const { return migration_pending_; }

bool LsmTree::AnyNonConforming() const {
  for (int level = 1; level <= static_cast<int>(levels_.size()); ++level) {
    if (!LevelConforms(level)) return true;
  }
  return false;
}

bool LsmTree::HasMaintenanceWork() const {
  if (!Health().ok()) return false;
  return sealed_ != nullptr || migration_pending_ || AnyNonConforming();
}

int LsmTree::MaintenancePriority() const {
  if (sealed_ != nullptr) return 0;
  return migration_pending_ ? 1 : 2;
}

size_t LsmTree::RunsInLevel(int level) const {
  if (level < 1 || level > static_cast<int>(levels_.size())) return 0;
  return levels_[level - 1].size();
}

MaintenanceUnit LsmTree::PrepareMaintenance() {
  MaintenanceUnit unit;
  if (!Health().ok()) return unit;
  unit.epoch = tuning_epoch_;
  if (sealed_ != nullptr) {
    unit.kind = MaintenanceUnit::Kind::kFlush;
    unit.priority = 0;
    unit.buffer = sealed_;  // stays installed and readable while we build
    unit.bits_per_entry = FilterBitsForLevel(1, std::max(DeepestLevel(), 1));
    return unit;
  }
  for (int level = 1; level <= static_cast<int>(levels_.size()); ++level) {
    if (LevelConforms(level)) continue;
    unit.kind = MaintenanceUnit::Kind::kCompaction;
    unit.priority = migration_pending_ ? 1 : 2;
    unit.level = level;
    unit.inputs = levels_[level - 1];  // snapshot, newest first
    // A single non-conforming run is an over-capacity leveling run: push
    // it down without rewriting (the migration-step fast path).
    unit.single_run_push = unit.inputs.size() == 1;
    unit.drop_tombstones = NothingBelow(level);
    const bool act_as_leveling =
        opts_.policy == CompactionPolicy::kLeveling ||
        (opts_.policy == CompactionPolicy::kLazyLeveling &&
         NothingBelow(level));
    const int depth =
        std::max(DeepestLevel(), ProjectedDepth(TotalEntries()));
    // Leveling merges stay on their level, tiering output descends — the
    // Monkey budget targets where the output will live.
    unit.bits_per_entry =
        FilterBitsForLevel(act_as_leveling ? level : level + 1, depth);
    return unit;
  }
  if (migration_pending_) {
    // Every level conforms: the migration is resolved. Persisting the
    // cleared flag is best effort — an unpersisted clear merely costs a
    // reopen one conformance scan.
    migration_pending_ = false;
    (void)PublishManifestIfDurable();
  }
  return unit;
}

Status LsmTree::ExecuteMaintenance(MaintenanceUnit* unit,
                                   const MergeLimits& limits) {
  switch (unit->kind) {
    case MaintenanceUnit::Kind::kNone:
      return Status::OK();
    case MaintenanceUnit::Kind::kFlush: {
      // Flushes unblock writers, so they are exempt from the rate
      // limiter (limits applies to compactions only).
      ++stats_->flushes;
      RunBuilder builder(store_, unit->bits_per_entry, IoContext::kFlush);
      for (SkipList::Iterator it = unit->buffer->NewIterator(); it.Valid();
           it.Next()) {
        ENDURE_RETURN_IF_ERROR(builder.Add(it.entry()));
      }
      StatusOr<std::shared_ptr<Run>> run_or = builder.Finish();
      ENDURE_RETURN_IF_ERROR(run_or.status());
      unit->output = std::move(*run_or);
      return Status::OK();
    }
    case MaintenanceUnit::Kind::kCompaction: {
      if (unit->single_run_push) {
        unit->output = unit->inputs.front();  // pure move-down, no I/O
        return Status::OK();
      }
      ++stats_->compactions;
      StatusOr<std::shared_ptr<Run>> merged_or =
          MergeRunsEx(store_, unit->inputs, unit->bits_per_entry,
                      unit->drop_tombstones, limits);
      ENDURE_RETURN_IF_ERROR(merged_or.status());
      unit->output = std::move(*merged_or);  // null = consolidated away
      return Status::OK();
    }
  }
  return Status::OK();
}

Status LsmTree::InstallMaintenance(MaintenanceUnit* unit) {
  ENDURE_RETURN_IF_ERROR(Health());
  if (unit->kind == MaintenanceUnit::Kind::kNone) return Status::OK();
  if (unit->epoch != tuning_epoch_) {
    // A Reconfigure landed mid-execute: the unit carries stale tuning.
    // Dropping the output frees its segment; the next prepared unit
    // redoes the work under the new epoch.
    unit->output.reset();
    return Status::OK();
  }

  if (unit->kind == MaintenanceUnit::Kind::kFlush) {
    if (sealed_ != unit->buffer) {
      // A foreground Flush consumed the buffer meanwhile; its entries
      // are already resident via that path.
      unit->output.reset();
      return Status::OK();
    }
    Stamp(unit->output);
    EnsureLevel(1);
    auto& l1 = levels_[0];
    l1.insert(l1.begin(), std::move(unit->output));  // newest first
    sealed_.reset();
    PublishSnapshot();
    // The cascade continues stepwise: if level 1 stopped conforming, the
    // next prepared unit merges it. A checkpoint failure here is safe
    // and retryable — the installed entries remain covered by the
    // un-rewritten WAL.
    return CheckpointIfDurable();
  }

  // Compaction: the snapshot must still be resident as the OLDEST runs
  // of the level (a racing flush install may have prepended newer ones —
  // fine, the output slots in behind them). Anything else means a
  // foreground cascade rewrote the level: discard.
  const int level = unit->level;
  if (level > static_cast<int>(levels_.size())) {
    unit->output.reset();
    return Status::OK();
  }
  auto& runs = levels_[level - 1];
  const size_t k = unit->inputs.size();
  bool inputs_resident = runs.size() >= k;
  if (inputs_resident) {
    const size_t off = runs.size() - k;
    for (size_t i = 0; i < k; ++i) {
      if (runs[off + i] != unit->inputs[i]) {
        inputs_resident = false;
        break;
      }
    }
  }
  if (!inputs_resident) {
    unit->output.reset();
    return Status::OK();
  }
  runs.erase(runs.end() - static_cast<ptrdiff_t>(k), runs.end());

  if (unit->single_run_push) {
    // Push-down without rewrite keeps the run's build epoch (no Stamp).
    EnsureLevel(level + 1);  // may reallocate levels_ — index, don't alias
    auto& below = levels_[level];
    below.insert(below.begin(), std::move(unit->output));
  } else if (unit->output != nullptr) {
    Stamp(unit->output);
    // Placement re-derives the policy rule against the CURRENT tree
    // (NothingBelow may have changed while unlocked): a leveling-like
    // level keeps the merge if it fits; otherwise — and always under
    // tiering — the output descends.
    const bool act_as_leveling =
        opts_.policy == CompactionPolicy::kLeveling ||
        (opts_.policy == CompactionPolicy::kLazyLeveling &&
         NothingBelow(level));
    if (act_as_leveling &&
        unit->output->num_entries() <= LevelCapacity(level)) {
      // The merge of the level's oldest runs: back = oldest position.
      levels_[level - 1].push_back(std::move(unit->output));
    } else {
      EnsureLevel(level + 1);  // may reallocate levels_ — index, don't alias
      auto& below = levels_[level];
      below.insert(below.begin(), std::move(unit->output));
    }
  }
  // A null merged output means every entry consolidated away: removing
  // the suffix was the whole install.
  PublishSnapshot();

  if (unit->priority == 1) ++stats_->migration_steps;
  return PublishManifestIfDurable();
}

Status LsmTree::AdvanceMigration(bool* did_work) {
  *did_work = false;
  ENDURE_RETURN_IF_ERROR(Health());
  if (!migration_pending_) return Status::OK();
  for (int level = 1; level <= static_cast<int>(levels_.size()); ++level) {
    if (LevelConforms(level)) continue;
    // Detach the level's runs but keep `inputs` alive until the step has
    // fully succeeded: AddRunToLevel's failure contract (nothing new
    // resident) makes `levels_[level-1] = std::move(inputs)` an exact
    // rollback, so a failed step is a retryable no-op.
    std::vector<std::shared_ptr<Run>> inputs =
        std::move(levels_[level - 1]);
    levels_[level - 1].clear();
    ++stats_->migration_steps;
    Status s;
    if (inputs.size() == 1) {
      // A single over-capacity run: push it down without rewriting here
      // (it keeps its build epoch); AddRunToLevel merges it into the
      // destination (and cascades) if that level is occupied. Pass a
      // copy of the shared_ptr — `inputs` keeps the run for rollback.
      s = AddRunToLevel(inputs.front(), level + 1);
    } else {
      // Fold the level into one run under the new tuning. AddRunToLevel
      // re-applies the policy rules at this level: the run stays if it
      // now conforms, or descends and merges deeper if it overflows.
      ++stats_->compactions;
      const bool drop = NothingBelow(level);
      const int depth =
          std::max(DeepestLevel(), ProjectedDepth(TotalEntries()));
      StatusOr<std::shared_ptr<Run>> merged_or = MergeRuns(
          store_, inputs, FilterBitsForLevel(level, depth), drop);
      s = merged_or.status();
      if (s.ok() && *merged_or != nullptr) {
        Stamp(*merged_or);
        s = AddRunToLevel(std::move(*merged_or), level);
      }
    }
    if (!s.ok()) {
      levels_[level - 1] = std::move(inputs);
      return s;
    }
    PublishSnapshot();
    // A manifest failure here is NOT rolled back: the in-memory tree is
    // consistent and merely ahead of the (still valid) old manifest; the
    // next successful checkpoint catches up. Deferred segment deletes
    // purge only after a successful publish, so the old manifest's
    // segments remain on disk.
    ENDURE_RETURN_IF_ERROR(PublishManifestIfDurable());
    *did_work = true;
    return Status::OK();
  }
  migration_pending_ = false;
  // Persist the cleared flag so a reopen does not re-scan a conforming
  // tree (reached once per migration, not per maintenance poll).
  return PublishManifestIfDurable();
}

MigrationProgress LsmTree::Progress() const {
  MigrationProgress p;
  p.epoch = tuning_epoch_;
  for (int level = 1; level <= static_cast<int>(levels_.size()); ++level) {
    if (!LevelConforms(level)) ++p.nonconforming_levels;
    for (const auto& run : levels_[level - 1]) {
      ++p.runs_total;
      p.entries_total += run->num_entries();
      if (run->tuning_epoch() == tuning_epoch_) {
        ++p.runs_current;
        p.entries_current += run->num_entries();
      }
    }
  }
  return p;
}

void MigrationProgress::Accumulate(const MigrationProgress& other) {
  epoch = std::max(epoch, other.epoch);
  runs_total += other.runs_total;
  runs_current += other.runs_current;
  entries_total += other.entries_total;
  entries_current += other.entries_current;
  nonconforming_levels += other.nonconforming_levels;
}

int LsmTree::DeepestLevel() const {
  for (int i = static_cast<int>(levels_.size()); i >= 1; --i) {
    if (!levels_[i - 1].empty()) return i;
  }
  return 0;
}

std::vector<LevelInfo> LsmTree::GetLevelInfos() const {
  std::vector<LevelInfo> out;
  for (size_t i = 0; i < levels_.size(); ++i) {
    LevelInfo info;
    info.level = static_cast<int>(i) + 1;
    info.num_runs = levels_[i].size();
    bool first = true;
    for (const auto& run : levels_[i]) {
      info.num_entries += run->num_entries();
      info.min_key = first ? run->min_key()
                           : std::min(info.min_key, run->min_key());
      info.max_key = first ? run->max_key()
                           : std::max(info.max_key, run->max_key());
      if (run->tuning_epoch() == tuning_epoch_) ++info.current_epoch_runs;
      if (run->num_entries() > 0) {
        info.filter_bits_per_entry +=
            static_cast<double>(run->bloom().bits()) /
            static_cast<double>(run->num_entries());
      }
      first = false;
    }
    if (!levels_[i].empty()) {
      info.filter_bits_per_entry /= static_cast<double>(levels_[i].size());
    }
    info.capacity = LevelCapacity(info.level);
    out.push_back(info);
  }
  return out;
}

uint64_t LsmTree::TotalEntries() const {
  uint64_t total = active_->size();
  if (sealed_ != nullptr) total += sealed_->size();
  for (const auto& runs : levels_) {
    for (const auto& run : runs) total += run->num_entries();
  }
  return total;
}

// ------------------------------------------------------------ durability --

void LsmTree::StageWalRecord(const Entry& e) {
  char buf[kEncodedEntryBytes];
  EncodeEntry(e, buf);
  wal_->Append(kWalEntryRecord, buf, kEncodedEntryBytes);
  ++stats_->wal_records;
}

Status LsmTree::CommitWal() {
  if (wal_ == nullptr) return Status::OK();
  const uint64_t before = wal_->bytes_committed();
  const Status s = wal_->Commit();
  // Count even a torn commit's bytes (Commit accounts what reached the
  // file before failing).
  stats_->wal_bytes += wal_->bytes_committed() - before;
  return s;
}

Status LsmTree::CheckpointIfDurable() {
  if (durable_dir_.empty()) return Status::OK();
  return Checkpoint();
}

Status LsmTree::PublishManifestIfDurable() {
  if (durable_dir_.empty()) return Status::OK();
  return PublishManifest();
}

Status LsmTree::PublishManifest() {
  if (durable_dir_.empty()) {
    return Status::FailedPrecondition("durability is not attached");
  }
  ENDURE_RETURN_IF_ERROR(WriteManifest(
      durable_dir_ + "/" + kManifestFileName, ToManifest()));
  ++stats_->manifest_writes;
  // The new manifest no longer references compacted-away segments;
  // their deferred unlinks are now safe.
  file_store_->PurgePendingDeletes();
  return Status::OK();
}

ManifestData LsmTree::ToManifest() const {
  ManifestData m;
  m.RecordTuningFrom(opts_);
  m.tuning_epoch = tuning_epoch_;
  m.migration_pending = migration_pending_;
  m.next_seq = next_seq_;
  m.next_file_id = file_store_ != nullptr ? file_store_->next_id() : 1;
  m.levels.resize(levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    for (const auto& run : levels_[i]) {
      ManifestRun meta;
      meta.segment = run->segment();
      meta.num_entries = run->num_entries();
      meta.tuning_epoch = run->tuning_epoch();
      // The *requested* (pre-block-rounding) budget: rebuilding with it
      // reproduces the exact filter geometry, hash count included.
      meta.bloom_bits_per_entry = run->bloom_bits_per_entry();
      m.levels[i].push_back(meta);
    }
  }
  return m;
}

Status LsmTree::RecoverFrom(const ManifestData& m) {
  ENDURE_CHECK_MSG(file_store_ != nullptr,
                   "recovery requires durability Options");
  ENDURE_CHECK_MSG(
      levels_.empty() && active_->empty() && sealed_ == nullptr,
      "RecoverFrom requires an empty tree");
  if (m.entries_per_page != opts_.entries_per_page) {
    return Status::InvalidArgument(
        "manifest page geometry does not match the opening Options");
  }
  tuning_epoch_ = m.tuning_epoch;
  migration_pending_ = m.migration_pending;
  if (m.next_seq > next_seq_) next_seq_ = m.next_seq;
  file_store_->set_next_id(m.next_file_id);
  EnsureLevel(static_cast<int>(m.levels.size()));
  for (size_t i = 0; i < m.levels.size(); ++i) {
    for (const ManifestRun& meta : m.levels[i]) {
      ENDURE_RETURN_IF_ERROR(
          file_store_->AdoptSegment(meta.segment, meta.num_entries));
      StatusOr<std::shared_ptr<Run>> run_or =
          RebuildRun(store_, meta, opts_.entries_per_page);
      ENDURE_RETURN_IF_ERROR(run_or.status());
      levels_[i].push_back(std::move(*run_or));
    }
  }
  // Recovered runs hold sequences up to next_seq_ - 1; snapshot readers
  // need a visible bound covering all of them before the runs publish.
  if (next_seq_ > 1) BumpVisible(next_seq_ - 1);
  PublishSnapshot();
  // Segment files the manifest does not reference are leftovers of a
  // crash between a segment write and the manifest publication (or of
  // deferred deletes that never got purged) — reap them.
  return file_store_->RemoveUnreferencedSegments();
}

Status LsmTree::ReplayEntry(const Entry& e) {
  // The write path minus operation counting and logging: replayed
  // entries are not new operations, and the WAL is not attached yet.
  active_->Upsert(e);
  BumpVisible(e.seq);
  return MaintainAfterWrite();
}

StatusOr<uint64_t> LsmTree::ReplayWal(const std::string& wal_path) {
  auto reader_or = WalReader::Open(wal_path);
  if (!reader_or.ok()) return reader_or.status();
  std::unique_ptr<WalReader> reader = std::move(reader_or).value();
  uint64_t replayed = 0;
  SeqNum max_seq = 0;
  uint8_t type;
  std::string payload;
  while (reader->Next(&type, &payload)) {
    // Unknown record types and malformed payloads are skipped, not
    // fatal: the prefix property only depends on the framing CRC.
    if (type != kWalEntryRecord || payload.size() != kEncodedEntryBytes) {
      continue;
    }
    const Entry e = DecodeEntry(payload.data());
    ENDURE_RETURN_IF_ERROR(ReplayEntry(e));
    max_seq = std::max(max_seq, e.seq);
    ++replayed;
  }
  if (max_seq >= next_seq_) next_seq_ = max_seq + 1;
  stats_->wal_replayed_entries += replayed;
  return replayed;
}

Status LsmTree::AttachDurability(const std::string& dir,
                                 WalFlushService* flush_service) {
  ENDURE_CHECK_MSG(opts_.durability && file_store_ != nullptr,
                   "AttachDurability requires Options::durability");
  durable_dir_ = dir;
  flush_service_ = flush_service;
  // Checkpoint opens the WAL appender; the directory is consistent (and
  // a replayed WAL compacted) the moment durable operation begins.
  const Status s = Checkpoint();
  if (!s.ok()) durable_dir_.clear();
  return s;
}

Status LsmTree::Checkpoint() {
  if (durable_dir_.empty()) {
    return Status::FailedPrecondition("durability is not attached");
  }
  // 1. Publish the manifest (and purge deferred deletes). From here on
  //    the flushed runs are owned by the manifest; memtable contents
  //    are owned by the WAL below. A crash between the two steps leaves
  //    the new manifest with the old WAL — replay then re-applies
  //    entries the manifest already covers, which is a benign duplicate
  //    (same seq, same value).
  ENDURE_RETURN_IF_ERROR(PublishManifest());

  // 2. Rewrite the WAL to exactly the resident memtable contents, via
  //    temp + rename so a crash mid-rewrite keeps the old log. Records
  //    staged on the old writer are already applied to the memtable, so
  //    the snapshot below covers them. A background-fsync failure
  //    latched on the appender still surfaces first: a rewrite must not
  //    be the hole a dying device escapes through.
  if (wal_ != nullptr) {
    ENDURE_RETURN_IF_ERROR(wal_->deferred_error());
  }
  const std::string wal_path = durable_dir_ + "/" + kWalFileName;
  const std::string tmp = wal_path + ".rewrite";
  ENDURE_RETURN_IF_ERROR(RemoveFile(tmp));
  {
    auto snap_or = WalWriter::Open(tmp, WalSyncMode::kNone);
    if (!snap_or.ok()) return snap_or.status();
    std::unique_ptr<WalWriter> snap = std::move(snap_or).value();
    char buf[kEncodedEntryBytes];
    const MemTable* buffers[] = {sealed_.get(), active_.get()};
    for (const MemTable* mt : buffers) {  // older (sealed) first
      if (mt == nullptr) continue;
      for (SkipList::Iterator it = mt->NewIterator(); it.Valid();
           it.Next()) {
        EncodeEntry(it.entry(), buf);
        snap->Append(kWalEntryRecord, buf, kEncodedEntryBytes);
      }
    }
    Status snap_status = snap->Commit();
    // Always synced, whatever the running mode: the rename below must
    // never replace a durable log with a less-durable one. Explicit so
    // the error surfaces; Abandon() then stops the destructor from
    // repeating the (already clean) flush+fsync.
    if (snap_status.ok()) snap_status = snap->Sync();
    snap->Abandon();
    if (!snap_status.ok()) {
      (void)RemoveFile(tmp);  // don't strand the partial snapshot
      return snap_status;
    }
  }
  if (const FaultOutcome f = CheckFault(FaultSite::kFileRename);
      f.err != 0) {
    (void)RemoveFile(tmp);
    return Status::IOError("rename " + tmp + " -> " + wal_path +
                           " failed (injected)");
  }
  if (std::rename(tmp.c_str(), wal_path.c_str()) != 0) {
    (void)RemoveFile(tmp);
    return Status::IOError("rename " + tmp + " -> " + wal_path);
  }
  ENDURE_RETURN_IF_ERROR(SyncDir(durable_dir_));
  ++stats_->wal_rewrites;

  // 3. Point the appender at the rewritten log. The writer object (and
  //    with it the flusher thread or flush-service registration, and
  //    the interval phase) survives: tearing it down per checkpoint
  //    used to reset the background-sync clock, letting a sub-interval
  //    checkpoint cadence postpone interval syncs indefinitely.
  if (wal_ != nullptr) {
    return wal_->ReopenAfterRewrite(wal_path);
  }
  Statistics* stats = stats_;
  auto wal_or =
      WalWriter::Open(wal_path, opts_.wal_sync_mode,
                      opts_.wal_sync_interval_ms,
                      [stats] { ++stats->wal_syncs; }, flush_service_);
  if (!wal_or.ok()) return wal_or.status();
  wal_ = std::move(wal_or).value();
  return Status::OK();
}

void LsmTree::CrashForTesting() {
  if (wal_ != nullptr) {
    wal_->Abandon();
    wal_.reset();
  }
  durable_dir_.clear();  // no further checkpoints; files stay as-is
}

StatusOr<bool> LoadDurableState(const std::string& dir, Options* opts,
                                ManifestData* m) {
  const std::string path = dir + "/" + kManifestFileName;
  if (!FileExists(path)) return false;
  auto m_or = ReadManifest(path);
  if (!m_or.ok()) return m_or.status();
  *m = std::move(m_or).value();
  if (m->entries_per_page != opts->entries_per_page) {
    return Status::InvalidArgument(
        "entries_per_page does not match the persisted deployment");
  }
  m->ApplyTuningTo(opts);
  ENDURE_RETURN_IF_ERROR(opts->Validate());
  return true;
}

Status RecoverAndAttach(LsmTree* tree, const ManifestData& m,
                        bool existing, const std::string& dir,
                        WalFlushService* flush_service) {
  if (existing) {
    ENDURE_RETURN_IF_ERROR(tree->RecoverFrom(m));
    auto replayed = tree->ReplayWal(dir + "/" + kWalFileName);
    if (!replayed.ok()) return replayed.status();
    ++tree->stats()->recoveries;
  }
  return tree->AttachDurability(dir, flush_service);
}

}  // namespace endure::lsm
