#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cmath>

#include "lsm/merge_iterator.h"
#include "lsm/run_builder.h"

namespace endure::lsm {

LsmTree::LsmTree(const Options& options, PageStore* store, Statistics* stats)
    : opts_(options),
      store_(store),
      stats_(stats),
      memtable_(options.buffer_entries) {
  ENDURE_CHECK_MSG(opts_.Validate().ok(), "invalid Options");
  ENDURE_CHECK(store != nullptr && stats != nullptr);
  ENDURE_CHECK(store->entries_per_page() == opts_.entries_per_page);
}

uint64_t LsmTree::LevelCapacity(int level) const {
  ENDURE_CHECK(level >= 1);
  const double cap = static_cast<double>(opts_.buffer_entries) *
                     (opts_.size_ratio - 1) *
                     std::pow(opts_.size_ratio, level - 1);
  return static_cast<uint64_t>(cap);
}

int LsmTree::ProjectedDepth(uint64_t entries) const {
  // Smallest L with sum of level capacities >= entries.
  int level = 1;
  uint64_t cumulative = 0;
  while (true) {
    cumulative += LevelCapacity(level);
    if (cumulative >= entries || level >= 64) return level;
    ++level;
  }
}

double LsmTree::FilterBitsForLevel(int level, int projected_depth) const {
  const int depth = std::max(level, projected_depth);
  MonkeyAllocator alloc(opts_.filter_bits_per_entry, opts_.size_ratio, depth,
                        opts_.filter_allocation);
  return alloc.BitsPerEntry(level);
}

bool LsmTree::NothingBelow(int level) const {
  for (size_t i = static_cast<size_t>(level); i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return false;
  }
  return true;
}

void LsmTree::EnsureLevel(int level) {
  if (static_cast<int>(levels_.size()) < level) levels_.resize(level);
}

void LsmTree::Write(const Entry& e) {
  ++stats_->writes;
  memtable_.Upsert(e);
  if (memtable_.IsFull()) Flush();
}

void LsmTree::Put(Key key, Value value) {
  Write(Entry{key, next_seq_++, value, EntryType::kValue});
}

void LsmTree::Delete(Key key) {
  Write(Entry{key, next_seq_++, 0, EntryType::kTombstone});
}

void LsmTree::Flush() {
  if (memtable_.empty()) return;
  ++stats_->flushes;
  const std::vector<Entry> entries = memtable_.Dump();
  const int depth = std::max(DeepestLevel(), 1);
  RunBuilder builder(store_, FilterBitsForLevel(1, depth), IoContext::kFlush);
  for (const Entry& e : entries) builder.Add(e);
  std::shared_ptr<Run> run = builder.Finish();
  memtable_.Clear();
  AddRunToLevel(std::move(run), 1);
}

void LsmTree::AddRunToLevel(std::shared_ptr<Run> run, int level) {
  EnsureLevel(level);
  auto& runs = levels_[level - 1];

  // Lazy leveling: the current bottom level behaves like leveling (one
  // eagerly-merged run); all levels above it tier. The rule is
  // self-organizing — when data is pushed deeper, the old bottom starts
  // tiering automatically.
  const bool act_as_leveling =
      opts_.policy == CompactionPolicy::kLeveling ||
      (opts_.policy == CompactionPolicy::kLazyLeveling &&
       NothingBelow(level));

  if (act_as_leveling) {
    // Greedy sort-merge with the resident run(s). Pure leveling keeps one
    // run per level; under lazy leveling a level that just became the
    // bottom may still hold several tiered runs — fold them all in.
    if (!runs.empty()) {
      ++stats_->compactions;
      const bool drop = NothingBelow(level);
      const int depth = std::max(DeepestLevel(),
                                 ProjectedDepth(TotalEntries()));
      std::vector<std::shared_ptr<Run>> inputs;
      inputs.reserve(runs.size() + 1);
      inputs.push_back(run);
      for (auto& r : runs) inputs.push_back(r);  // newest first already
      std::shared_ptr<Run> merged = MergeRuns(
          store_, inputs, FilterBitsForLevel(level, depth), drop);
      runs.clear();
      if (merged == nullptr) return;  // everything consolidated away
      run = std::move(merged);
    }
    // Overflow: the level's run moves down and merges there.
    if (run->num_entries() > LevelCapacity(level)) {
      AddRunToLevel(std::move(run), level + 1);
      return;
    }
    runs.push_back(std::move(run));
    return;
  }

  // Tiering: accumulate runs; the T-th arrival merges the whole level into
  // one run on the next level down.
  runs.insert(runs.begin(), std::move(run));  // newest first
  if (static_cast<int>(runs.size()) >= opts_.size_ratio) {
    ++stats_->compactions;
    const bool drop = NothingBelow(level);
    const int depth =
        std::max(DeepestLevel(), ProjectedDepth(TotalEntries()));
    std::shared_ptr<Run> merged = MergeRuns(
        store_, runs, FilterBitsForLevel(level + 1, depth), drop);
    runs.clear();
    if (merged != nullptr) AddRunToLevel(std::move(merged), level + 1);
  }
}

std::optional<Value> LsmTree::Get(Key key) {
  ++stats_->gets;
  if (const Entry* e = memtable_.Find(key); e != nullptr) {
    if (e->is_tombstone()) return std::nullopt;
    return e->value;
  }
  for (const auto& runs : levels_) {
    for (const auto& run : runs) {  // newest first
      const std::optional<Entry> e = run->Get(key, opts_.fence_pointer_skip);
      if (e.has_value()) {
        if (e->is_tombstone()) return std::nullopt;
        return e->value;
      }
    }
  }
  return std::nullopt;
}

std::vector<Entry> LsmTree::Scan(Key lo, Key hi) {
  ++stats_->range_queries;
  std::vector<std::unique_ptr<EntryStream>> streams;

  // Memtable first (rank 0 = most recent source); no I/O.
  {
    std::vector<Entry> buffered;
    SkipList::Iterator it = memtable_.NewIterator();
    for (it.Seek(lo); it.Valid() && it.entry().key < hi; it.Next()) {
      buffered.push_back(it.entry());
    }
    if (!buffered.empty()) {
      streams.push_back(std::make_unique<VectorStream>(std::move(buffered)));
    }
  }

  for (const auto& runs : levels_) {
    for (const auto& run : runs) {
      std::optional<Run::Iterator> it = run->NewRangeIterator(lo, hi);
      if (it.has_value()) {
        streams.push_back(
            std::make_unique<StreamAdapter<Run::Iterator>>(std::move(*it)));
      } else if (!opts_.fence_pointer_skip) {
        // Model-faithful mode: the analytical cost model charges one seek
        // per run regardless of overlap; emulate the blind seek by reading
        // the run's first page.
        run->BlindSeek();
      }
    }
  }

  MergeIterator merge(std::move(streams));
  std::vector<Entry> merged = DrainMerge(&merge, /*drop_tombstones=*/true);
  // Page-aligned iterators may cover keys outside [lo, hi); trim.
  std::vector<Entry> out;
  out.reserve(merged.size());
  for (const Entry& e : merged) {
    if (e.key >= lo && e.key < hi) out.push_back(e);
  }
  return out;
}

void LsmTree::BulkLoad(const std::vector<Entry>& sorted_entries) {
  ENDURE_CHECK_MSG(levels_.empty() && memtable_.empty(),
                   "BulkLoad requires an empty tree");
  if (sorted_entries.empty()) return;
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    ENDURE_CHECK_MSG(sorted_entries[i - 1].key < sorted_entries[i].key,
                     "bulk-load keys must be strictly ascending");
  }

  const uint64_t n = sorted_entries.size();
  const int depth = ProjectedDepth(n);
  EnsureLevel(depth);

  // Fill bottom-up (a settled tree keeps its mass deep).
  std::vector<uint64_t> quota(depth + 1, 0);  // 1-based
  uint64_t remaining = n;
  for (int level = depth; level >= 1 && remaining > 0; --level) {
    quota[level] = std::min<uint64_t>(LevelCapacity(level), remaining);
    remaining -= quota[level];
  }
  ENDURE_CHECK(remaining == 0);

  // Smooth weighted round-robin so each level's run spans the key domain.
  std::vector<std::vector<Entry>> per_level(depth + 1);
  for (int level = 1; level <= depth; ++level) {
    per_level[level].reserve(quota[level]);
  }
  std::vector<int64_t> credit(depth + 1, 0);
  std::vector<uint64_t> assigned(depth + 1, 0);
  for (const Entry& e : sorted_entries) {
    int pick = 0;
    int64_t best = INT64_MIN;
    for (int level = 1; level <= depth; ++level) {
      if (assigned[level] >= quota[level]) continue;
      credit[level] += static_cast<int64_t>(quota[level]);
      if (credit[level] > best) {
        best = credit[level];
        pick = level;
      }
    }
    ENDURE_CHECK(pick >= 1);
    credit[pick] -= static_cast<int64_t>(n);
    ++assigned[pick];
    per_level[pick].push_back(e);
  }

  for (int level = 1; level <= depth; ++level) {
    if (per_level[level].empty()) continue;
    RunBuilder builder(store_, FilterBitsForLevel(level, depth),
                       IoContext::kBulkLoad);
    for (const Entry& e : per_level[level]) builder.Add(e);
    levels_[level - 1].push_back(builder.Finish());
  }
}

int LsmTree::DeepestLevel() const {
  for (int i = static_cast<int>(levels_.size()); i >= 1; --i) {
    if (!levels_[i - 1].empty()) return i;
  }
  return 0;
}

std::vector<LevelInfo> LsmTree::GetLevelInfos() const {
  std::vector<LevelInfo> out;
  for (size_t i = 0; i < levels_.size(); ++i) {
    LevelInfo info;
    info.level = static_cast<int>(i) + 1;
    info.num_runs = levels_[i].size();
    bool first = true;
    for (const auto& run : levels_[i]) {
      info.num_entries += run->num_entries();
      info.min_key = first ? run->min_key()
                           : std::min(info.min_key, run->min_key());
      info.max_key = first ? run->max_key()
                           : std::max(info.max_key, run->max_key());
      first = false;
    }
    info.capacity = LevelCapacity(info.level);
    out.push_back(info);
  }
  return out;
}

uint64_t LsmTree::TotalEntries() const {
  uint64_t total = memtable_.size();
  for (const auto& runs : levels_) {
    for (const auto& run : runs) total += run->num_entries();
  }
  return total;
}

}  // namespace endure::lsm
