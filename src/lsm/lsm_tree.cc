#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "lsm/merge_iterator.h"
#include "lsm/run_builder.h"

namespace endure::lsm {
namespace {

/// Streams the memtable's entries in [lo, hi) without copying them out.
class MemtableRangeStream final : public EntryStream {
 public:
  MemtableRangeStream(const MemTable& memtable, Key lo, Key hi)
      : it_(memtable.NewIterator()), hi_(hi) {
    it_.Seek(lo);
  }
  bool Valid() const override { return it_.Valid() && it_.entry().key < hi_; }
  const Entry& entry() const override { return it_.entry(); }
  void Next() override { it_.Next(); }

 private:
  SkipList::Iterator it_;
  Key hi_;
};

}  // namespace

LsmTree::LsmTree(const Options& options, PageStore* store, Statistics* stats)
    : opts_(options),
      store_(store),
      stats_(stats),
      active_(std::make_unique<MemTable>(options.buffer_entries)) {
  ENDURE_CHECK_MSG(opts_.Validate().ok(), "invalid Options");
  ENDURE_CHECK(store != nullptr && stats != nullptr);
  ENDURE_CHECK(store->entries_per_page() == opts_.entries_per_page);
}

uint64_t LsmTree::LevelCapacity(int level) const {
  ENDURE_CHECK(level >= 1);
  const double cap = static_cast<double>(opts_.buffer_entries) *
                     (opts_.size_ratio - 1) *
                     std::pow(opts_.size_ratio, level - 1);
  return static_cast<uint64_t>(cap);
}

int LsmTree::ProjectedDepth(uint64_t entries) const {
  // Smallest L with sum of level capacities >= entries.
  int level = 1;
  uint64_t cumulative = 0;
  while (true) {
    cumulative += LevelCapacity(level);
    if (cumulative >= entries || level >= 64) return level;
    ++level;
  }
}

double LsmTree::FilterBitsForLevel(int level, int projected_depth) const {
  const int depth = std::max(level, projected_depth);
  MonkeyAllocator alloc(opts_.filter_bits_per_entry, opts_.size_ratio, depth,
                        opts_.filter_allocation);
  return alloc.BitsPerEntry(level);
}

bool LsmTree::NothingBelow(int level) const {
  for (size_t i = static_cast<size_t>(level); i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return false;
  }
  return true;
}

void LsmTree::EnsureLevel(int level) {
  if (static_cast<int>(levels_.size()) < level) levels_.resize(level);
}

void LsmTree::Write(const Entry& e) {
  ++stats_->writes;
  active_->Upsert(e);
  if (!active_->IsFull()) return;
  if (opts_.background_maintenance) {
    // Hand the full buffer to maintenance instead of flushing inline. If
    // maintenance has fallen behind (the previous sealed buffer is still
    // pending), flush it here — backpressure that keeps at most one
    // sealed buffer alive.
    if (sealed_ != nullptr) FlushSealedMemtable();
    SealMemtable();
  } else {
    Flush();
  }
}

void LsmTree::Put(Key key, Value value) {
  Write(Entry{key, next_seq_++, value, EntryType::kValue});
}

void LsmTree::Delete(Key key) {
  Write(Entry{key, next_seq_++, 0, EntryType::kTombstone});
}

void LsmTree::SealMemtable() {
  ENDURE_CHECK(sealed_ == nullptr);
  sealed_ = std::move(active_);
  active_ = std::make_unique<MemTable>(opts_.buffer_entries);
}

void LsmTree::FlushBuffer(const MemTable& buffer) {
  ++stats_->flushes;
  const int depth = std::max(DeepestLevel(), 1);
  // Stream straight out of the skiplist; no intermediate dump vector.
  RunBuilder builder(store_, FilterBitsForLevel(1, depth), IoContext::kFlush);
  for (SkipList::Iterator it = buffer.NewIterator(); it.Valid(); it.Next()) {
    builder.Add(it.entry());
  }
  std::shared_ptr<Run> run = builder.Finish();
  Stamp(run);
  AddRunToLevel(std::move(run), 1);
}

void LsmTree::FlushSealedMemtable() {
  if (sealed_ == nullptr) return;
  // Detach before flushing so the invariant "sealed_ is full" never sees
  // a half-flushed buffer; entries stay reachable via the new run.
  std::unique_ptr<MemTable> buffer = std::move(sealed_);
  FlushBuffer(*buffer);
}

void LsmTree::Flush() {
  // Age order: the sealed buffer predates the active one, so its run must
  // land on level 1 first (runs within a level are newest-first).
  FlushSealedMemtable();
  if (active_->empty()) return;
  FlushBuffer(*active_);
  active_->Clear();
}

void LsmTree::AddRunToLevel(std::shared_ptr<Run> run, int level) {
  EnsureLevel(level);
  auto& runs = levels_[level - 1];

  // Lazy leveling: the current bottom level behaves like leveling (one
  // eagerly-merged run); all levels above it tier. The rule is
  // self-organizing — when data is pushed deeper, the old bottom starts
  // tiering automatically.
  const bool act_as_leveling =
      opts_.policy == CompactionPolicy::kLeveling ||
      (opts_.policy == CompactionPolicy::kLazyLeveling &&
       NothingBelow(level));

  if (act_as_leveling) {
    // Greedy sort-merge with the resident run(s). Pure leveling keeps one
    // run per level; under lazy leveling a level that just became the
    // bottom may still hold several tiered runs — fold them all in.
    if (!runs.empty()) {
      ++stats_->compactions;
      const bool drop = NothingBelow(level);
      const int depth = std::max(DeepestLevel(),
                                 ProjectedDepth(TotalEntries()));
      std::vector<std::shared_ptr<Run>> inputs;
      inputs.reserve(runs.size() + 1);
      inputs.push_back(run);
      for (auto& r : runs) inputs.push_back(r);  // newest first already
      std::shared_ptr<Run> merged = MergeRuns(
          store_, inputs, FilterBitsForLevel(level, depth), drop);
      runs.clear();
      if (merged == nullptr) return;  // everything consolidated away
      run = std::move(merged);
      Stamp(run);
    }
    // Overflow: the level's run moves down and merges there.
    if (run->num_entries() > LevelCapacity(level)) {
      AddRunToLevel(std::move(run), level + 1);
      return;
    }
    runs.push_back(std::move(run));
    return;
  }

  // Tiering: accumulate runs; the T-th arrival merges the whole level into
  // one run on the next level down.
  runs.insert(runs.begin(), std::move(run));  // newest first
  if (static_cast<int>(runs.size()) >= opts_.size_ratio) {
    ++stats_->compactions;
    const bool drop = NothingBelow(level);
    const int depth =
        std::max(DeepestLevel(), ProjectedDepth(TotalEntries()));
    std::shared_ptr<Run> merged = MergeRuns(
        store_, runs, FilterBitsForLevel(level + 1, depth), drop);
    runs.clear();
    if (merged != nullptr) {
      Stamp(merged);
      AddRunToLevel(std::move(merged), level + 1);
    }
  }
}

std::optional<Value> LsmTree::Get(Key key) {
  ++stats_->gets;
  if (!active_->empty()) {
    if (const Entry* e = active_->Find(key); e != nullptr) {
      if (e->is_tombstone()) return std::nullopt;
      return e->value;
    }
  }
  // The sealed buffer is older than the active one but newer than any run.
  if (sealed_ != nullptr) {
    if (const Entry* e = sealed_->Find(key); e != nullptr) {
      if (e->is_tombstone()) return std::nullopt;
      return e->value;
    }
  }
  for (const auto& runs : levels_) {
    for (const auto& run : runs) {  // newest first
      const Entry* e = run->Get(key, opts_.fence_pointer_skip);
      if (e != nullptr) {
        if (e->is_tombstone()) return std::nullopt;
        return e->value;
      }
    }
  }
  return std::nullopt;
}

std::vector<Entry> LsmTree::Scan(Key lo, Key hi) {
  ++stats_->range_queries;

  // Gather qualifying run iterators (adapters live on this frame; reserve
  // keeps their addresses stable for the non-owning merge).
  size_t total_runs = 0;
  for (const auto& runs : levels_) total_runs += runs.size();
  std::vector<StreamAdapter<Run::Iterator>> run_streams;
  run_streams.reserve(total_runs);
  MemtableRangeStream memtable_stream(*active_, lo, hi);
  std::vector<EntryStream*> heads;
  heads.reserve(total_runs + 2);
  // Active buffer first (rank 0 = most recent source), then the sealed
  // buffer (rank 1, older than active but newer than any run); no I/O.
  if (memtable_stream.Valid()) heads.push_back(&memtable_stream);
  std::optional<MemtableRangeStream> sealed_stream;
  if (sealed_ != nullptr) {
    sealed_stream.emplace(*sealed_, lo, hi);
    if (sealed_stream->Valid()) heads.push_back(&*sealed_stream);
  }

  for (const auto& runs : levels_) {
    for (const auto& run : runs) {
      std::optional<Run::Iterator> it = run->NewRangeIterator(lo, hi);
      if (it.has_value()) {
        run_streams.emplace_back(std::move(*it));
        heads.push_back(&run_streams.back());
      } else if (!opts_.fence_pointer_skip) {
        // Model-faithful mode: the analytical cost model charges one seek
        // per run regardless of overlap; emulate the blind seek by reading
        // the run's first page.
        run->BlindSeek();
      }
    }
  }

  // Drain, trimming to [lo, hi) on the fly: run iterators are page-aligned
  // and may cover keys outside the range. The merged stream is sorted, so
  // the first key >= hi ends the scan — every page whose first key is
  // inside the range has been read by then, leaving the page-read count
  // identical to a full drain.
  std::vector<Entry> out;
  if (heads.size() == 1) {
    // Fast path: one qualifying source (the common case under leveling) —
    // no need to pay the k-way merge's per-key scans.
    EntryStream* s = heads.front();
    for (; s->Valid(); s->Next()) {
      const Entry& e = s->entry();
      if (e.key < lo) continue;
      if (e.key >= hi) break;
      if (!e.is_tombstone()) out.push_back(e);
    }
    return out;
  }
  MergeIterator merge(std::move(heads));
  for (; merge.Valid(); merge.Next()) {
    const Entry& e = merge.entry();
    if (e.key < lo) continue;
    if (e.key >= hi) break;
    if (!e.is_tombstone()) out.push_back(e);
  }
  return out;
}

void LsmTree::BulkLoad(const std::vector<Entry>& sorted_entries) {
  ENDURE_CHECK_MSG(levels_.empty() && active_->empty() && sealed_ == nullptr,
                   "BulkLoad requires an empty tree");
  if (sorted_entries.empty()) return;
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    ENDURE_CHECK_MSG(sorted_entries[i - 1].key < sorted_entries[i].key,
                     "bulk-load keys must be strictly ascending");
  }

  const uint64_t n = sorted_entries.size();
  const int depth = ProjectedDepth(n);
  EnsureLevel(depth);

  // Fill bottom-up (a settled tree keeps its mass deep).
  std::vector<uint64_t> quota(depth + 1, 0);  // 1-based
  uint64_t remaining = n;
  for (int level = depth; level >= 1 && remaining > 0; --level) {
    quota[level] = std::min<uint64_t>(LevelCapacity(level), remaining);
    remaining -= quota[level];
  }
  ENDURE_CHECK(remaining == 0);

  // Stride scheduling: level ℓ's j-th entry has ideal position
  // (2j+1)/(2·quota[ℓ]) of the input, so each level's run samples the key
  // domain evenly. A small heap orders the next pick of every level by
  // ideal position — O(n log depth) overall instead of the O(n·depth)
  // per-entry credit scan, and each entry streams directly into its
  // level's RunBuilder (no per-level staging vectors).
  struct Cursor {
    uint64_t taken;
    uint64_t quota;
    int level;
  };
  struct PicksLater {
    bool operator()(const Cursor& a, const Cursor& b) const {
      // position(c) = (2·taken + 1) / (2·quota); compare cross-multiplied.
      return static_cast<unsigned __int128>(2 * a.taken + 1) * b.quota >
             static_cast<unsigned __int128>(2 * b.taken + 1) * a.quota;
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, PicksLater> next_pick;
  std::vector<std::unique_ptr<RunBuilder>> builders(depth + 1);
  for (int level = 1; level <= depth; ++level) {
    if (quota[level] == 0) continue;
    builders[level] = std::make_unique<RunBuilder>(
        store_, FilterBitsForLevel(level, depth), IoContext::kBulkLoad);
    next_pick.push(Cursor{0, quota[level], level});
  }

  for (const Entry& e : sorted_entries) {
    ENDURE_CHECK(!next_pick.empty());
    Cursor c = next_pick.top();
    next_pick.pop();
    builders[c.level]->Add(e);
    if (++c.taken < c.quota) next_pick.push(c);
  }

  for (int level = 1; level <= depth; ++level) {
    if (builders[level] == nullptr) continue;
    std::shared_ptr<Run> run = builders[level]->Finish();
    Stamp(run);
    levels_[level - 1].push_back(std::move(run));
  }
}

Status LsmTree::Reconfigure(const Options& new_options) {
  ENDURE_RETURN_IF_ERROR(new_options.Validate());
  if (new_options.entries_per_page != opts_.entries_per_page) {
    return Status::InvalidArgument(
        "entries_per_page is fixed at open (page geometry is shared with "
        "the page store)");
  }
  if (new_options.backend != opts_.backend ||
      new_options.storage_dir != opts_.storage_dir) {
    return Status::InvalidArgument(
        "storage backend and directory cannot change on a live tree");
  }
  if (new_options.background_maintenance != opts_.background_maintenance) {
    return Status::InvalidArgument(
        "background_maintenance cannot change on a live tree");
  }

  opts_ = new_options;
  ++tuning_epoch_;
  ++stats_->reconfigurations;
  // Conservatively assume the structure must be revisited; the first
  // AdvanceMigration call that finds every level conforming clears it.
  migration_pending_ = true;

  // Retarget the seal threshold; an over-full buffer is handled like a
  // filling write, except that Reconfigure itself never flushes in
  // background mode — it stays a cheap foreground call. If a sealed
  // buffer is already pending, the active one keeps serving over
  // threshold until the next write's backpressure reseals it (capacity
  // is a seal threshold, not a hard bound).
  active_->set_capacity(opts_.buffer_entries);
  if (active_->IsFull()) {
    if (!opts_.background_maintenance) {
      Flush();
    } else if (sealed_ == nullptr) {
      SealMemtable();
    }
  }
  return Status::OK();
}

bool LsmTree::LevelConforms(int level) const {
  const auto& runs = levels_[level - 1];
  if (runs.empty()) return true;
  const bool act_as_leveling =
      opts_.policy == CompactionPolicy::kLeveling ||
      (opts_.policy == CompactionPolicy::kLazyLeveling &&
       NothingBelow(level));
  if (act_as_leveling) {
    if (runs.size() > 1) return false;
    return runs.front()->num_entries() <= LevelCapacity(level);
  }
  // Tiering-like levels trigger a merge on the T-th run's arrival, so a
  // conforming level holds at most T-1 runs (entry mass moves down by run
  // count, not capacity).
  return static_cast<int>(runs.size()) < opts_.size_ratio;
}

bool LsmTree::MigrationPending() const { return migration_pending_; }

bool LsmTree::AdvanceMigration() {
  if (!migration_pending_) return false;
  for (int level = 1; level <= static_cast<int>(levels_.size()); ++level) {
    if (LevelConforms(level)) continue;
    std::vector<std::shared_ptr<Run>> inputs =
        std::move(levels_[level - 1]);
    levels_[level - 1].clear();
    ++stats_->migration_steps;
    if (inputs.size() == 1) {
      // A single over-capacity run: push it down without rewriting here
      // (it keeps its build epoch); AddRunToLevel merges it into the
      // destination (and cascades) if that level is occupied.
      AddRunToLevel(std::move(inputs.front()), level + 1);
      return true;
    }
    // Fold the level into one run under the new tuning. AddRunToLevel
    // re-applies the policy rules at this level: the run stays if it now
    // conforms, or descends and merges deeper if it overflows.
    ++stats_->compactions;
    const bool drop = NothingBelow(level);
    const int depth =
        std::max(DeepestLevel(), ProjectedDepth(TotalEntries()));
    std::shared_ptr<Run> merged =
        MergeRuns(store_, inputs, FilterBitsForLevel(level, depth), drop);
    if (merged != nullptr) {
      Stamp(merged);
      AddRunToLevel(std::move(merged), level);
    }
    return true;
  }
  migration_pending_ = false;
  return false;
}

MigrationProgress LsmTree::Progress() const {
  MigrationProgress p;
  p.epoch = tuning_epoch_;
  for (int level = 1; level <= static_cast<int>(levels_.size()); ++level) {
    if (!LevelConforms(level)) ++p.nonconforming_levels;
    for (const auto& run : levels_[level - 1]) {
      ++p.runs_total;
      p.entries_total += run->num_entries();
      if (run->tuning_epoch() == tuning_epoch_) {
        ++p.runs_current;
        p.entries_current += run->num_entries();
      }
    }
  }
  return p;
}

void MigrationProgress::Accumulate(const MigrationProgress& other) {
  epoch = std::max(epoch, other.epoch);
  runs_total += other.runs_total;
  runs_current += other.runs_current;
  entries_total += other.entries_total;
  entries_current += other.entries_current;
  nonconforming_levels += other.nonconforming_levels;
}

int LsmTree::DeepestLevel() const {
  for (int i = static_cast<int>(levels_.size()); i >= 1; --i) {
    if (!levels_[i - 1].empty()) return i;
  }
  return 0;
}

std::vector<LevelInfo> LsmTree::GetLevelInfos() const {
  std::vector<LevelInfo> out;
  for (size_t i = 0; i < levels_.size(); ++i) {
    LevelInfo info;
    info.level = static_cast<int>(i) + 1;
    info.num_runs = levels_[i].size();
    bool first = true;
    for (const auto& run : levels_[i]) {
      info.num_entries += run->num_entries();
      info.min_key = first ? run->min_key()
                           : std::min(info.min_key, run->min_key());
      info.max_key = first ? run->max_key()
                           : std::max(info.max_key, run->max_key());
      if (run->tuning_epoch() == tuning_epoch_) ++info.current_epoch_runs;
      if (run->num_entries() > 0) {
        info.filter_bits_per_entry +=
            static_cast<double>(run->bloom().bits()) /
            static_cast<double>(run->num_entries());
      }
      first = false;
    }
    if (!levels_[i].empty()) {
      info.filter_bits_per_entry /= static_cast<double>(levels_[i].size());
    }
    info.capacity = LevelCapacity(info.level);
    out.push_back(info);
  }
  return out;
}

uint64_t LsmTree::TotalEntries() const {
  uint64_t total = active_->size();
  if (sealed_ != nullptr) total += sealed_->size();
  for (const auto& runs : levels_) {
    for (const auto& run : runs) total += run->num_entries();
  }
  return total;
}

}  // namespace endure::lsm
