#include "lsm/merge_iterator.h"

#include "util/macros.h"

namespace endure::lsm {

MergeIterator::MergeIterator(
    std::vector<std::unique_ptr<EntryStream>> inputs)
    : owned_(std::move(inputs)) {
  inputs_.reserve(owned_.size());
  for (const auto& s : owned_) inputs_.push_back(s.get());
  FindNext();
}

MergeIterator::MergeIterator(std::vector<EntryStream*> inputs)
    : inputs_(std::move(inputs)) {
  FindNext();
}

bool MergeIterator::Valid() const { return valid_; }

const Entry& MergeIterator::entry() const {
  ENDURE_DCHECK(valid_);
  return current_;
}

void MergeIterator::Next() {
  ENDURE_DCHECK(valid_);
  FindNext();
}

void MergeIterator::FindNext() {
  // Find the smallest key among the heads; among equal keys the
  // lowest-rank (newest) source wins and all other heads with that key are
  // consumed.
  valid_ = false;
  bool have_min = false;
  Key min_key = 0;
  size_t winner = 0;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i] == nullptr || !inputs_[i]->Valid()) continue;
    const Key k = inputs_[i]->entry().key;
    if (!have_min || k < min_key) {
      have_min = true;
      min_key = k;
      winner = i;  // first (lowest-rank) source seen with this key
    }
  }
  if (!have_min) return;
  current_ = inputs_[winner]->entry();
  valid_ = true;
  // Consume every head carrying min_key.
  for (EntryStream* input : inputs_) {
    if (input == nullptr) continue;
    while (input->Valid() && input->entry().key == min_key) input->Next();
  }
}

std::vector<Entry> DrainMerge(MergeIterator* merge, bool drop_tombstones) {
  ENDURE_CHECK(merge != nullptr);
  std::vector<Entry> out;
  while (merge->Valid()) {
    const Entry& e = merge->entry();
    if (!(drop_tombstones && e.is_tombstone())) out.push_back(e);
    merge->Next();
  }
  return out;
}

}  // namespace endure::lsm
