// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// A deployment-wide sharded block cache over PageStore pages, plus the
// memory-arbitration policy that splits one global byte budget between the
// write buffers and the cache ("Breaking Down Memory Walls", PAPERS.md).
//
// The cache holds decoded pages (Entry arrays) keyed by
// (store, segment, page). Hits copy the page out into the caller's
// PageBuffer, so cached data is never borrowed: eviction can drop a slot
// while a previous hit's copy is still in use. Admission is the
// responsibility of the page store and happens only for pages that passed
// whatever integrity verification the read performed (checksum-verified
// admission) and only for point/range-query reads — compaction, flush and
// recovery I/O bypasses the cache entirely so the page-exact accounting
// those paths are tested against stays deterministic.
//
// Eviction is clock (second chance) per cache shard: hits set a reference
// bit without taking the shard lock; inserts advance the clock hand under
// it. Sharding by key hash keeps the per-shard critical sections short and
// uncontended, which is what the lock-free read path needs from its only
// remaining shared structure.

#ifndef ENDURE_LSM_BLOCK_CACHE_H_
#define ENDURE_LSM_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lsm/page_store.h"
#include "lsm/statistics.h"
#include "util/macros.h"

namespace endure::lsm {

class BlockCache {
 public:
  /// `capacity_bytes` bounds the decoded-page payload held across all
  /// cache shards (0 = every lookup misses and nothing is admitted).
  explicit BlockCache(uint64_t capacity_bytes, int num_shards = 16);
  ENDURE_DISALLOW_COPY_AND_ASSIGN(BlockCache);

  /// Hands out a deployment-unique store id. SegmentIds are only unique
  /// within one PageStore, so every store that feeds the cache registers
  /// itself and keys its pages under the returned id.
  uint64_t RegisterStore() {
    return next_store_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copies the cached page into `out` and returns true on a hit. The
  /// caller owns the copy; eviction never invalidates it.
  bool Lookup(uint64_t store_id, SegmentId segment, uint64_t page_idx,
              PageBuffer* out);

  /// Admits one decoded page, evicting via the clock hand to fit. The
  /// caller must only admit pages it verified (CRC-checked, or from a
  /// backend that cannot rot). Evictions are counted against `stats`
  /// (nullable).
  void Insert(uint64_t store_id, SegmentId segment, uint64_t page_idx,
              const Entry* entries, size_t count, Statistics* stats);

  /// Drops every cached page of (store_id, segment). Called by
  /// PageStore::FreeSegment so a recycled SegmentId can never resurrect a
  /// dead segment's pages.
  void EraseSegment(uint64_t store_id, SegmentId segment);

  /// Retargets the byte capacity (memory arbiter). Shards evict down to
  /// the new bound on their next insert; shrinking does not synchronously
  /// drop pages.
  void set_capacity(uint64_t bytes) {
    capacity_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Current decoded-payload bytes resident across all shards.
  uint64_t usage() const;

 private:
  struct CacheKey {
    uint64_t store_id = 0;
    SegmentId segment = 0;
    uint64_t page = 0;
    bool operator==(const CacheKey& o) const {
      return store_id == o.store_id && segment == o.segment && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const CacheKey& k) const {
      // Fibonacci mixing over the three fields.
      uint64_t h = k.store_id * 0x9e3779b97f4a7c15ULL;
      h ^= k.segment + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.page + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Slot {
    CacheKey key;
    std::vector<Entry> entries;
    /// Second-chance bit: set lock-free on hit, cleared by the hand.
    std::atomic<bool> referenced{false};
    bool valid = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<CacheKey, size_t, KeyHash> index;  ///< key -> slot
    std::vector<std::unique_ptr<Slot>> slots;             ///< clock ring
    std::vector<size_t> free_slots;
    size_t hand = 0;
    uint64_t usage_bytes = 0;
  };

  Shard& ShardFor(const CacheKey& k) {
    return shards_[KeyHash{}(k) % shards_.size()];
  }
  /// Evicts clock-style until `need` more bytes fit under the per-shard
  /// share of capacity. Shard lock held.
  void EvictToFit(Shard& s, uint64_t need, Statistics* stats);
  uint64_t PerShardCapacity() const {
    return capacity() / shards_.size();
  }
  static uint64_t SlotBytes(size_t count) {
    return static_cast<uint64_t>(count) * sizeof(Entry);
  }

  std::vector<Shard> shards_;
  std::atomic<uint64_t> capacity_;
  std::atomic<uint64_t> next_store_id_{1};
};

/// The memory arbiter's split decision: how one global budget divides
/// between the block cache and the write buffers.
struct ArbiterSplit {
  uint64_t cache_bytes = 0;
  uint64_t buffer_bytes = 0;
};

/// Splits `budget_bytes` proportionally to the observed read share of the
/// recent operation mix (`reads` point+range lookups vs `writes` in the
/// observation window), clamped so neither side starves: the cache share
/// stays within [1/8, 7/8] of the budget and the buffers keep at least
/// `min_buffer_bytes`. Pure function — the ShardedDB arbiter applies it,
/// tests pin its behaviour.
ArbiterSplit ArbitrateMemory(uint64_t budget_bytes, uint64_t reads,
                             uint64_t writes, uint64_t min_buffer_bytes);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_BLOCK_CACHE_H_
