#include "lsm/bloom_filter.h"

#include <algorithm>
#include <cmath>

namespace endure::lsm {
namespace {

// 64-bit finalizer (splitmix64) — well-distributed hash for integer keys.
uint64_t Hash1(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Independent second hash (murmur3 finalizer with a different stream).
uint64_t Hash2(uint64_t x) {
  x ^= 0xc2b2ae3d27d4eb4fULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BloomFilter::BloomFilter(uint64_t expected_entries, double bits_per_entry)
    : bits_per_entry_(std::max(0.0, bits_per_entry)) {
  const double raw_bits =
      bits_per_entry_ * static_cast<double>(std::max<uint64_t>(1,
                                            expected_entries));
  num_bits_ = static_cast<uint64_t>(std::llround(raw_bits));
  if (num_bits_ == 0) {
    // Degenerate: no memory -> always answer "maybe".
    num_hashes_ = 0;
    return;
  }
  num_bits_ = std::max<uint64_t>(64, num_bits_);
  num_hashes_ = std::max(
      1, static_cast<int>(std::lround(bits_per_entry_ * std::log(2.0))));
  words_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::Add(Key key) {
  if (num_hashes_ == 0) return;
  const uint64_t h1 = Hash1(key);
  const uint64_t h2 = Hash2(key) | 1;  // odd stride
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h % num_bits_;
    words_[bit >> 6] |= (1ULL << (bit & 63));
    h += h2;
  }
}

bool BloomFilter::MayContain(Key key) const {
  if (num_hashes_ == 0) return true;
  const uint64_t h1 = Hash1(key);
  const uint64_t h2 = Hash2(key) | 1;
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h % num_bits_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    h += h2;
  }
  return true;
}

double BloomFilter::TheoreticalFpr() const {
  if (num_hashes_ == 0) return 1.0;
  const double ln2 = std::log(2.0);
  return std::exp(-bits_per_entry_ * ln2 * ln2);
}

}  // namespace endure::lsm
