#include "lsm/bloom_filter.h"

#include <algorithm>
#include <cmath>

namespace endure::lsm {
namespace {

constexpr uint64_t kWordsPerBlock = BloomFilter::kBlockBits / 64;

// Second-level hash: murmur3 finalizer over the first hash. Forced odd so
// the double-hashing stride cycles through all in-block positions.
uint64_t ProbeStride(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h | 1;
}

// Maps a 64-bit hash onto [0, n) without a modulo (Lemire's fastrange).
uint64_t FastRange(uint64_t hash, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(hash) * n) >> 64);
}

}  // namespace

uint64_t BloomFilter::KeyHash(Key key) {
  // splitmix64 finalizer — well-distributed hash for integer keys.
  uint64_t x = key + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

BloomFilter::BloomFilter(uint64_t expected_entries, double bits_per_entry)
    : bits_per_entry_(std::max(0.0, bits_per_entry)) {
  const double raw_bits =
      bits_per_entry_ * static_cast<double>(std::max<uint64_t>(1,
                                            expected_entries));
  const uint64_t requested = static_cast<uint64_t>(std::llround(raw_bits));
  if (requested == 0) {
    // Degenerate: no memory -> always answer "maybe".
    num_bits_ = 0;
    num_blocks_ = 0;
    num_hashes_ = 0;
    return;
  }
  num_blocks_ = std::max<uint64_t>(1, (requested + kBlockBits - 1) /
                                          kBlockBits);
  num_bits_ = num_blocks_ * kBlockBits;
  num_hashes_ = std::max(
      1, static_cast<int>(std::lround(bits_per_entry_ * std::log(2.0))));
  words_.assign(num_blocks_ * kWordsPerBlock, 0);
}

void BloomFilter::AddHash(uint64_t hash) {
  if (num_hashes_ == 0) return;
  uint64_t* block = words_.data() + FastRange(hash, num_blocks_) *
                                        kWordsPerBlock;
  const uint64_t stride = ProbeStride(hash);
  uint64_t h = hash;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h & (kBlockBits - 1);
    block[bit >> 6] |= (1ULL << (bit & 63));
    h += stride;
  }
}

void BloomFilter::Prefetch(Key key) const {
  if (num_hashes_ == 0) return;
  __builtin_prefetch(words_.data() +
                     FastRange(KeyHash(key), num_blocks_) * kWordsPerBlock);
}

bool BloomFilter::MayContain(Key key) const {
  if (num_hashes_ == 0) return true;
  const uint64_t hash = KeyHash(key);
  const uint64_t* block = words_.data() + FastRange(hash, num_blocks_) *
                                              kWordsPerBlock;
  const uint64_t stride = ProbeStride(hash);
  uint64_t h = hash;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h & (kBlockBits - 1);
    if ((block[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    h += stride;
  }
  return true;
}

double BloomFilter::TheoreticalFpr() const {
  if (num_hashes_ == 0) return 1.0;
  const double ln2 = std::log(2.0);
  return std::exp(-bits_per_entry_ * ln2 * ln2);
}

}  // namespace endure::lsm
