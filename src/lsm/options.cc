#include "lsm/options.h"

namespace endure::lsm {

Status Options::Validate() const {
  if (size_ratio < 2) {
    return Status::InvalidArgument("size_ratio must be >= 2");
  }
  if (buffer_entries < 1) {
    return Status::InvalidArgument("buffer_entries must be >= 1");
  }
  if (entries_per_page < 1) {
    return Status::InvalidArgument("entries_per_page must be >= 1");
  }
  if (filter_bits_per_entry < 0.0 || filter_bits_per_entry > 64.0) {
    return Status::InvalidArgument(
        "filter_bits_per_entry must be in [0, 64]");
  }
  if (backend == StorageBackend::kFile && storage_dir.empty()) {
    return Status::InvalidArgument("file backend requires storage_dir");
  }
  if (num_shards < 1 || num_shards > 4096) {
    return Status::InvalidArgument("num_shards must be in [1, 4096]");
  }
  if (durability && backend != StorageBackend::kFile) {
    return Status::InvalidArgument(
        "durability requires the file backend (the WAL and manifest live "
        "in storage_dir)");
  }
  if (wal_sync_interval_ms < 1) {
    return Status::InvalidArgument("wal_sync_interval_ms must be >= 1");
  }
  if (recovery_threads < 0 || recovery_threads > 4096) {
    return Status::InvalidArgument(
        "recovery_threads must be in [0, 4096] (0 = auto)");
  }
  if (background_max_retries < 0 || background_max_retries > 1000) {
    return Status::InvalidArgument(
        "background_max_retries must be in [0, 1000]");
  }
  if (background_retry_base_ms < 1 || background_retry_base_ms > 10000) {
    return Status::InvalidArgument(
        "background_retry_base_ms must be in [1, 10000]");
  }
  if (compaction_max_subtasks < 0 || compaction_max_subtasks > 64) {
    return Status::InvalidArgument(
        "compaction_max_subtasks must be in [0, 64] (0 = auto)");
  }
  if (l1_stall_runs < 0 || l1_stall_runs > (1 << 20)) {
    return Status::InvalidArgument(
        "l1_stall_runs must be in [0, 2^20] (0 = auto)");
  }
  if (maintenance_threads < 0 || maintenance_threads > 4096) {
    return Status::InvalidArgument(
        "maintenance_threads must be in [0, 4096] (0 = auto)");
  }
  if (memory_budget_bytes > 0 && block_cache_bytes == 0) {
    return Status::InvalidArgument(
        "memory_budget_bytes requires block_cache_bytes > 0 (the initial "
        "cache share of the budget)");
  }
  if (memory_budget_bytes > 0 && block_cache_bytes >= memory_budget_bytes) {
    return Status::InvalidArgument(
        "block_cache_bytes must leave room for the write buffers inside "
        "memory_budget_bytes");
  }
  return Status::OK();
}

}  // namespace endure::lsm
