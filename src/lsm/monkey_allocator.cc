#include "lsm/monkey_allocator.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace endure::lsm {

MonkeyAllocator::MonkeyAllocator(double bits_per_entry, int size_ratio,
                                 int levels, FilterAllocation allocation)
    : levels_(levels) {
  ENDURE_CHECK(levels >= 1);
  ENDURE_CHECK(size_ratio >= 2);
  ENDURE_CHECK(bits_per_entry >= 0.0);
  fpr_.resize(levels);
  bits_.resize(levels);

  const double ln2sq = std::log(2.0) * std::log(2.0);
  if (allocation == FilterAllocation::kUniform) {
    for (int i = 0; i < levels; ++i) {
      bits_[i] = bits_per_entry;
      fpr_[i] = bits_per_entry > 0.0 ? std::exp(-bits_per_entry * ln2sq)
                                     : 1.0;
    }
    return;
  }

  // Monkey (Eq. 11): deeper levels get exponentially larger FPRs.
  const double T = static_cast<double>(size_ratio);
  const double log_t = std::log(T);
  for (int i = 1; i <= levels; ++i) {
    const double log_f = (T / (T - 1.0)) * log_t -
                         static_cast<double>(levels + 1 - i) * log_t -
                         bits_per_entry * ln2sq;
    const double f = std::min(1.0, std::exp(log_f));
    fpr_[i - 1] = f;
    bits_[i - 1] = f >= 1.0 ? 0.0 : -std::log(f) / ln2sq;
  }
}

double MonkeyAllocator::BitsPerEntry(int level) const {
  ENDURE_CHECK(level >= 1 && level <= levels_);
  return bits_[level - 1];
}

double MonkeyAllocator::FalsePositiveRate(int level) const {
  ENDURE_CHECK(level >= 1 && level <= levels_);
  return fpr_[level - 1];
}

}  // namespace endure::lsm
