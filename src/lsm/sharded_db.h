// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Concurrent front-end of the storage engine: hash-partitions the key
// space across Options::num_shards independent LsmTree shards, each
// guarded by its own mutex. With Options::background_maintenance,
// flushes and compactions run through a CompactionScheduler (priority
// admission, rate limiting, deadline-based retry) on a util::ThreadPool,
// using the tree's prepare/execute/install protocol so merge I/O happens
// OFF the shard lock — foreground Get/Put only contend with the brief
// snapshot and run-list-swap phases. Writers that fill a shard's buffer
// seal it and return immediately; Get/Scan consult the
// sealed-but-unflushed buffer so an acknowledged write is always visible.
// Saturated shards (sealed buffer pending and the active buffer full, or
// too many level-1 runs) apply backpressure: writers stall, with the time
// accounted in Statistics::compaction_stall_ms. See docs/architecture.md
// ("Concurrency model") for the locking discipline and the
// maintenance-job lifecycle.

#ifndef ENDURE_LSM_SHARDED_DB_H_
#define ENDURE_LSM_SHARDED_DB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/compaction_scheduler.h"
#include "lsm/lsm_tree.h"
#include "util/env.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace endure::lsm {

/// A sharded, thread-safe database instance. All public operations may be
/// called concurrently from any number of threads; destruction must be
/// externally ordered after the last operation (as with any C++ object).
class ShardedDB {
 public:
  /// Opens a sharded database; fails on invalid options. With
  /// `options.background_maintenance`, a maintenance pool of
  /// min(num_shards, hardware threads) workers is started.
  ///
  /// With Options::durability, storage_dir is a deployment root holding
  /// one subdirectory per shard (`shard_<i>`, each with its own WAL and
  /// manifest) plus a root manifest recording the shard count and the
  /// last applied tuning. An existing deployment is recovered — the
  /// shard directories concurrently, on up to Options::recovery_threads
  /// workers (0 = auto), so restart latency is the max over shards
  /// rather than the sum: acknowledged writes replayed from the WALs,
  /// the persisted tuning resumed, and any in-flight migration
  /// rescheduled on the maintenance pool exactly where AdvanceMigration
  /// left off. If any shard fails to recover, the open fails as a whole
  /// with the error of the lowest-numbered failing shard (deterministic
  /// whatever the thread interleaving), and every already-recovered
  /// shard is torn down before return — no threads, WAL writers, file
  /// descriptors or the deployment LOCK outlive a failed open. The
  /// shard count is immutable across reopens. See docs/durability.md
  /// and docs/operations.md.
  static StatusOr<std::unique_ptr<ShardedDB>> Open(const Options& options);

  /// Drains in-flight maintenance jobs, then tears down the shards.
  ~ShardedDB();

  ENDURE_DISALLOW_COPY_AND_ASSIGN(ShardedDB);

  /// Inserts or updates a key. Acknowledged (OK) writes are immediately
  /// visible to Get/Scan (linearized by the shard mutex). Non-OK means
  /// the write was not acknowledged — typically the owning shard is in
  /// read-only degraded mode (see Health()).
  Status Put(Key key, Value value);

  /// Inserts or updates several keys, group-committing each shard's
  /// subset to its WAL in one write (+ at most one fsync). Not atomic
  /// across shards: a reader may observe a partially applied batch. On
  /// error the remaining shards' subsets are still applied (the batch
  /// was never atomic); the first failing shard's status is returned.
  Status PutBatch(const std::vector<std::pair<Key, Value>>& pairs);

  /// Deletes a key. Error contract as Put.
  Status Delete(Key key);

  /// Point lookup. Lock-free: never takes the shard mutex — the tree's
  /// snapshot protocol (one atomic load, counted in snapshot_acquires)
  /// serves the read concurrently with writers and maintenance installs
  /// on the same shard.
  std::optional<Value> Get(Key key);

  /// Range query over [lo, hi): merges the per-shard results (shards hold
  /// disjoint key sets, so this is a sorted union) in key order. Lock-free
  /// like Get(); shards are snapshotted one at a time — the scan is a
  /// point-in-time view per shard, not across shards, like an iterator
  /// over a sharded RocksDB deployment. Returns the first failing shard's
  /// read error (I/O or checksum) instead of a silently truncated result.
  StatusOr<std::vector<Entry>> Scan(Key lo, Key hi);

  /// Synchronously flushes every shard (sealed buffer first, then the
  /// active one). Does not wait for previously scheduled background jobs;
  /// call WaitForMaintenance() first for a full barrier. On error the
  /// remaining shards are still flushed; the first failing shard's
  /// status is returned (no entry is lost — a failed shard keeps its
  /// buffers).
  Status Flush();

  /// First shard-level storage failure (prefixed "shard <i>: "), or OK.
  /// A non-OK shard is in read-only degraded mode — its writes are
  /// rejected, its reads keep serving, the other shards are unaffected.
  /// Latched when a background job exhausts Options::background_max_retries
  /// or a foreground write-path I/O failure occurs; cleared only by
  /// reopening the deployment after the fault is fixed. Statistics
  /// io_retries / checksum_failures / read_only_transitions count the
  /// events (see docs/operations.md).
  Status Health() const;

  /// Serving-front-end drain hook: flushes every shard, waits out all
  /// scheduled maintenance (so sealed buffers, pending migrations and
  /// compactions converge) and returns Health(). A durable deployment is
  /// fully checkpointed afterwards — the state a network server wants
  /// the engine in between Server::Shutdown() and process exit, so the
  /// next open replays an empty WAL tail. Safe alongside concurrent
  /// traffic (it is Flush + WaitForMaintenance), though new writes
  /// arriving during the drain naturally reopen buffers.
  Status Drain();

  /// Named counter snapshot for remote observability — the STATS
  /// endpoint's payload: every aggregated Statistics counter (see
  /// Statistics::Named) plus deployment facts remote callers cannot
  /// derive themselves (num_shards, total_entries, health_code, and the
  /// current tuning's size_ratio / policy / buffer_entries). Lock-free
  /// relaxed reads, like TotalStats().
  std::vector<std::pair<std::string, uint64_t>> RemoteStatsSnapshot() const;

  /// Blocks until every scheduled maintenance job has run. A quiescent
  /// point: afterwards (absent concurrent writers) no sealed buffers
  /// remain scheduled, any pending tuning migration has fully converged
  /// (maintenance jobs reschedule themselves until it has), and
  /// statistics are stable.
  void WaitForMaintenance();

  /// Applies a new engine tuning to the running database without stopping
  /// reads or losing acknowledged writes. `new_options` describes one
  /// shard, exactly like the options passed to Open (bridge::MakeOptions
  /// with the same shard count produces it from a tuner Tuning):
  /// - Bloom bits-per-entry / filter allocation / fence_pointer_skip
  ///   apply to runs built from now on; resident runs keep their filters
  ///   until compacted (per-run tuning epochs track the migration —
  ///   see Progress()).
  /// - buffer_entries retargets every shard's seal threshold immediately.
  /// - size_ratio / policy changes migrate incrementally: each shard's
  ///   maintenance job reshapes one level per step between serving
  ///   foreground traffic (with background_maintenance off, the
  ///   migration runs inline here, shard by shard).
  /// num_shards, entries_per_page, backend, storage_dir and
  /// background_maintenance are immutable; changing them returns
  /// InvalidArgument and leaves every shard untouched.
  Status ApplyTuning(const Options& new_options);

  /// Aggregated migration progress across shards (see MigrationProgress).
  /// Lock-step epochs: every ApplyTuning bumps all shards once.
  MigrationProgress Progress() const;

  /// Bulk loads strictly-ascending (key, value) pairs into empty shards,
  /// routing each pair to its shard (each shard's subsequence stays
  /// strictly ascending).
  Status BulkLoad(const std::vector<std::pair<Key, Value>>& sorted_pairs);

  /// Aggregated statistics across all shards: a lock-free relaxed
  /// snapshot (counters may be mid-update under concurrent load; at
  /// quiescent points the sums are exact).
  Statistics TotalStats() const;

  /// Snapshot of one shard's statistics.
  Statistics ShardStats(size_t shard) const;

  /// Entries across all shards (memtables, sealed buffers and runs).
  uint64_t TotalEntries() const;

  /// Which shard serves `key` (exposed for tests and routing layers).
  size_t ShardForKey(Key key) const;

  size_t num_shards() const { return shards_.size(); }

  /// Snapshot of the current engine options (replaced by ApplyTuning, so
  /// a copy is returned rather than a reference into racing state).
  Options options() const {
    std::lock_guard<std::mutex> lock(options_mu_);
    return options_;
  }

  /// Structural access to one shard's tree for tests/experiments. Only
  /// safe at quiescent points (no concurrent operations or maintenance).
  const LsmTree& shard_tree(size_t shard) const {
    return *shards_[shard]->tree;
  }

  /// The deployment-wide block cache, or null when Options::
  /// block_cache_bytes was 0 at open (exposed for tests and examples).
  BlockCache* block_cache() const { return cache_.get(); }

  /// Test hook: locks shard `i`'s maintenance mutex and hands the lock to
  /// the caller. Writers and maintenance on that shard block while it is
  /// held; lock-free Get/Scan must still complete — the contention
  /// regression test asserts exactly that.
  std::unique_lock<std::mutex> LockShardForTesting(size_t shard) {
    return std::unique_lock<std::mutex>(shards_[shard]->mu);
  }

  /// Simulates a crash for the kill-point recovery tests: stops the
  /// maintenance pool (in-flight jobs finish — a thread cannot be killed
  /// mid-step; the crash point is after them), then drops every shard's
  /// WAL writer without the final flush/sync or shutdown checkpoint.
  /// The instance must only be destroyed afterwards.
  void CrashForTesting();

 private:
  struct Shard {
    std::mutex mu;  ///< guards tree, store contents and scheduling state
    /// Signalled whenever maintenance installs work (or the shard goes
    /// idle/unhealthy); stalled writers wait here.
    std::condition_variable cv;
    Statistics stats;
    std::unique_ptr<PageStore> store;
    std::unique_ptr<LsmTree> tree;
    /// True while a maintenance job is queued or running for this shard
    /// (at most one in flight per shard; the job re-checks for sealed
    /// work under the lock, so a foreground Flush racing it is benign).
    bool maintenance_scheduled = false;
    /// True while a prepared unit is executing OFF the lock (between
    /// PrepareMaintenance and InstallMaintenance). Purely observational:
    /// foreground ops never wait on it — stale units discard themselves
    /// at install.
    bool unit_in_flight = false;
    /// Consecutive background-maintenance failures (guarded by mu).
    /// Reset on success; when it exceeds Options::background_max_retries
    /// the shard's tree is latched read-only.
    int maintenance_failures = 0;
  };

  /// `defer_shards` leaves shards_ empty for Open's durable path, which
  /// builds each shard with its own (possibly recovered) options.
  explicit ShardedDB(const Options& options, bool defer_shards = false);

  /// Recovers (or freshly creates) shard `index`'s directory into
  /// `*out`: per-shard options merge, store + tree construction, WAL
  /// replay and durability attach. Touches no shared mutable state
  /// except the flush service's thread-safe registry, so Open may run
  /// one call per shard concurrently.
  Status RecoverShard(const Options& root_opts, int index,
                      std::unique_ptr<Shard>* out);

  /// Called with `shard->mu` held: enqueues a maintenance job on the
  /// scheduler if the shard has pending work (sealed buffer, pending
  /// migration, or a non-conforming level) and none is in flight, at the
  /// shard's current priority (flush 0 / migration step 1 / major
  /// compaction 2). Each job performs one bounded unit of work and
  /// reschedules itself while work remains — so a reconfiguration
  /// converges in bounded steps without ever holding a shard lock for a
  /// whole-tree rebuild.
  void MaybeScheduleMaintenance(Shard* shard);

  /// Body of a scheduled maintenance job, running the tree's three-phase
  /// protocol: PrepareMaintenance under the shard lock, ExecuteMaintenance
  /// (the merge/flush I/O) with the lock RELEASED, InstallMaintenance
  /// under the lock again. Transient failures retry with exponential
  /// backoff (Options::background_retry_base_ms, doubling, capped at 1s)
  /// via the scheduler's deadline queue — no pool worker sleeps out the
  /// backoff — latching the shard read-only once
  /// Options::background_max_retries consecutive attempts failed.
  void RunMaintenanceUnit(Shard* shard);

  /// Snapshot of the execution controls for one maintenance job (rate
  /// limiter, subtask pool and partitioning knobs). Takes options_mu_
  /// only — call WITHOUT the shard lock held.
  MergeLimits MakeMergeLimits() const;

  /// Write-path hook for the memory arbiter: bumps the op counter by
  /// `ops` and, every ~1024 operations (when a memory budget is
  /// configured), re-splits Options::memory_budget_bytes between the
  /// block cache and the write buffers according to the observed
  /// read/write mix (ArbitrateMemory). Try-lock guarded — concurrent
  /// writers never queue behind a rebalance — and called with NO shard
  /// lock held (it takes shard locks itself to retarget buffers).
  void MaybeArbitrate(uint64_t ops);

  /// Called with `lock` held on shard->mu before applying a write:
  /// blocks while the shard is saturated (sealed buffer pending AND the
  /// active memtable full, or level 1 over Options::l1_stall_runs),
  /// releasing the lock so maintenance can drain. Accounts the wait in
  /// write_stalls / compaction_stall_ms. No-op without a scheduler.
  void MaybeStallWrites(Shard* shard, std::unique_lock<std::mutex>* lock);

  /// Serializes ApplyTuning calls and guards options_ (shard locks nest
  /// inside it; options() readers take only this).
  mutable std::mutex options_mu_;
  Options options_;
  /// Durable mode: exclusive LOCK-file guard on the deployment root,
  /// held for the instance's lifetime (one process per deployment).
  std::unique_ptr<FileLock> lock_;
  /// Durable kBackground mode with Options::shared_wal_flusher: the one
  /// thread driving every shard's WAL fsyncs (instead of one interval
  /// thread per shard). Declared before shards_ so it outlives the
  /// writers registered with it.
  std::unique_ptr<WalFlushService> flush_service_;
  /// Deployment-wide sharded clock block cache (null when disabled).
  /// Declared before shards_ so it outlives the page stores registered
  /// with it (stores erase their segments from the cache on teardown).
  std::unique_ptr<BlockCache> cache_;
  /// Memory-arbiter state: a relaxed write-op counter (every ~1024 ops
  /// one writer re-splits the budget) and a try-lock so rebalances never
  /// serialize the write path. last_cache_split_ dedups shift counting.
  std::atomic<uint64_t> arbiter_ops_{0};
  std::mutex arbiter_mu_;
  uint64_t last_cache_split_ = 0;  ///< guarded by arbiter_mu_
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Scheduler-level counters (sched_jobs / sched_requeues /
  /// sched_queue_peak); folded into TotalStats(). Not per-shard: the
  /// scheduler is shared.
  Statistics sched_stats_;
  /// Admission gate + retry timer + shared merge rate limiter in front of
  /// pool_. Declared BEFORE pool_ so it is destroyed after: jobs the pool
  /// drains during its own destruction call back into the scheduler.
  /// (~ShardedDB stops it first so those jobs cannot reschedule.)
  std::unique_ptr<CompactionScheduler> scheduler_;
  /// Declared after shards_ so it is destroyed first: the destructor
  /// drains queued jobs while the shards they reference are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_SHARDED_DB_H_
