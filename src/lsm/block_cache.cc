#include "lsm/block_cache.h"

#include <algorithm>

namespace endure::lsm {

BlockCache::BlockCache(uint64_t capacity_bytes, int num_shards)
    : shards_(static_cast<size_t>(std::max(1, num_shards))),
      capacity_(capacity_bytes) {}

bool BlockCache::Lookup(uint64_t store_id, SegmentId segment,
                        uint64_t page_idx, PageBuffer* out) {
  if (capacity() == 0 || out == nullptr) return false;
  const CacheKey key{store_id, segment, page_idx};
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) return false;
  Slot& slot = *s.slots[it->second];
  slot.referenced.store(true, std::memory_order_relaxed);
  out->Reserve(slot.entries.size());
  std::copy(slot.entries.begin(), slot.entries.end(), out->data());
  out->set_size(slot.entries.size());
  return true;
}

void BlockCache::Insert(uint64_t store_id, SegmentId segment,
                        uint64_t page_idx, const Entry* entries, size_t count,
                        Statistics* stats) {
  if (capacity() == 0 || count == 0) return;
  const uint64_t bytes = SlotBytes(count);
  if (bytes > PerShardCapacity()) return;  // would evict the whole shard
  const CacheKey key{store_id, segment, page_idx};
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Already resident (two readers raced the same miss); refresh the data
    // in place — the page is immutable, so the bytes are identical anyway.
    Slot& slot = *s.slots[it->second];
    slot.referenced.store(true, std::memory_order_relaxed);
    return;
  }
  EvictToFit(s, bytes, stats);
  size_t idx;
  if (!s.free_slots.empty()) {
    idx = s.free_slots.back();
    s.free_slots.pop_back();
  } else {
    idx = s.slots.size();
    s.slots.push_back(std::make_unique<Slot>());
  }
  Slot& slot = *s.slots[idx];
  slot.key = key;
  slot.entries.assign(entries, entries + count);
  slot.referenced.store(false, std::memory_order_relaxed);
  slot.valid = true;
  s.index[key] = idx;
  s.usage_bytes += bytes;
}

void BlockCache::EvictToFit(Shard& s, uint64_t need, Statistics* stats) {
  const uint64_t bound = PerShardCapacity();
  if (s.slots.empty()) return;
  // Two sweeps clear every reference bit and reach every victim; bail out
  // after that even if the bound is still exceeded (capacity may have been
  // shrunk below one page).
  size_t scanned = 0;
  const size_t limit = 2 * s.slots.size();
  while (s.usage_bytes + need > bound && scanned < limit) {
    Slot& victim = *s.slots[s.hand % s.slots.size()];
    s.hand = (s.hand + 1) % s.slots.size();
    ++scanned;
    if (!victim.valid) continue;
    if (victim.referenced.exchange(false, std::memory_order_relaxed)) {
      continue;  // second chance
    }
    s.usage_bytes -= SlotBytes(victim.entries.size());
    s.index.erase(victim.key);
    victim.entries.clear();
    victim.entries.shrink_to_fit();
    victim.valid = false;
    s.free_slots.push_back((s.hand + s.slots.size() - 1) % s.slots.size());
    if (stats != nullptr) ++stats->cache_evictions;
  }
}

void BlockCache::EraseSegment(uint64_t store_id, SegmentId segment) {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.index.begin(); it != s.index.end();) {
      if (it->first.store_id == store_id && it->first.segment == segment) {
        Slot& slot = *s.slots[it->second];
        s.usage_bytes -= SlotBytes(slot.entries.size());
        slot.entries.clear();
        slot.entries.shrink_to_fit();
        slot.valid = false;
        s.free_slots.push_back(it->second);
        it = s.index.erase(it);
      } else {
        ++it;
      }
    }
  }
}

uint64_t BlockCache::usage() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.usage_bytes;
  }
  return total;
}

ArbiterSplit ArbitrateMemory(uint64_t budget_bytes, uint64_t reads,
                             uint64_t writes, uint64_t min_buffer_bytes) {
  ArbiterSplit split;
  if (budget_bytes == 0) return split;
  const uint64_t total_ops = reads + writes;
  // No signal yet: split evenly.
  double read_share = total_ops == 0
                          ? 0.5
                          : static_cast<double>(reads) /
                                static_cast<double>(total_ops);
  read_share = std::clamp(read_share, 1.0 / 8.0, 7.0 / 8.0);
  uint64_t cache = static_cast<uint64_t>(
      static_cast<double>(budget_bytes) * read_share);
  // The buffers keep their floor even when the mix is read-only.
  if (budget_bytes - cache < min_buffer_bytes) {
    cache = budget_bytes > min_buffer_bytes ? budget_bytes - min_buffer_bytes
                                            : 0;
  }
  split.cache_bytes = cache;
  split.buffer_bytes = budget_bytes - cache;
  return split;
}

}  // namespace endure::lsm
