#include "lsm/manifest.h"

#include <cstring>

#include "util/env.h"
#include "util/wal.h"

namespace endure::lsm {
namespace {

constexpr uint32_t kManifestMagic = 0x4D444E45u;  // "ENDM"

// Little appenders/readers over a byte string. All integers are stored in
// native (little-endian) byte order, like the segment page encoding.
template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetFixed(const std::string& in, size_t* pos, T* v) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void ManifestData::ApplyTuningTo(Options* opts) const {
  opts->size_ratio = size_ratio;
  opts->policy = static_cast<CompactionPolicy>(policy);
  opts->buffer_entries = buffer_entries;
  opts->filter_bits_per_entry = filter_bits_per_entry;
  opts->filter_allocation = static_cast<FilterAllocation>(filter_allocation);
  opts->fence_pointer_skip = fence_pointer_skip;
}

void ManifestData::RecordTuningFrom(const Options& opts) {
  size_ratio = opts.size_ratio;
  policy = static_cast<int>(opts.policy);
  buffer_entries = opts.buffer_entries;
  filter_bits_per_entry = opts.filter_bits_per_entry;
  filter_allocation = static_cast<int>(opts.filter_allocation);
  fence_pointer_skip = opts.fence_pointer_skip;
  entries_per_page = opts.entries_per_page;
}

Status WriteManifest(const std::string& path, const ManifestData& m) {
  std::string payload;
  PutFixed<uint32_t>(&payload, static_cast<uint32_t>(m.size_ratio));
  PutFixed<uint8_t>(&payload, static_cast<uint8_t>(m.policy));
  PutFixed<uint8_t>(&payload, static_cast<uint8_t>(m.filter_allocation));
  PutFixed<uint8_t>(&payload, m.fence_pointer_skip ? 1 : 0);
  PutFixed<uint8_t>(&payload, m.migration_pending ? 1 : 0);
  PutFixed<uint8_t>(&payload, static_cast<uint8_t>(m.kind));
  PutFixed<uint64_t>(&payload, m.buffer_entries);
  PutFixed<uint64_t>(&payload, m.entries_per_page);
  PutFixed<double>(&payload, m.filter_bits_per_entry);
  PutFixed<uint32_t>(&payload, static_cast<uint32_t>(m.num_shards));
  PutFixed<uint64_t>(&payload, m.tuning_epoch);
  PutFixed<uint64_t>(&payload, m.next_seq);
  PutFixed<uint64_t>(&payload, m.next_file_id);
  PutFixed<uint32_t>(&payload, static_cast<uint32_t>(m.levels.size()));
  for (const auto& level : m.levels) {
    PutFixed<uint32_t>(&payload, static_cast<uint32_t>(level.size()));
    for (const ManifestRun& run : level) {
      PutFixed<uint64_t>(&payload, run.segment);
      PutFixed<uint64_t>(&payload, run.num_entries);
      PutFixed<uint64_t>(&payload, run.tuning_epoch);
      PutFixed<double>(&payload, run.bloom_bits_per_entry);
    }
  }

  std::string blob;
  blob.reserve(16 + payload.size());
  PutFixed<uint32_t>(&blob, kManifestMagic);
  PutFixed<uint32_t>(&blob, kManifestVersion);
  PutFixed<uint32_t>(&blob, Crc32(payload.data(), payload.size()));
  PutFixed<uint32_t>(&blob, static_cast<uint32_t>(payload.size()));
  blob += payload;
  return WriteFileAtomic(path, blob);
}

StatusOr<ManifestData> ReadManifest(const std::string& path) {
  auto blob_or = ReadFileToString(path);
  if (!blob_or.ok()) return blob_or.status();
  const std::string& blob = *blob_or;

  size_t pos = 0;
  uint32_t magic, version, crc, len;
  if (!GetFixed(blob, &pos, &magic) || magic != kManifestMagic) {
    return Status::IOError("manifest " + path + ": bad magic");
  }
  if (!GetFixed(blob, &pos, &version) || version > kManifestVersion) {
    return Status::IOError("manifest " + path +
                           ": unsupported format version");
  }
  if (!GetFixed(blob, &pos, &crc) || !GetFixed(blob, &pos, &len) ||
      blob.size() - pos < len) {
    return Status::IOError("manifest " + path + ": truncated header");
  }
  if (Crc32(blob.data() + pos, len) != crc) {
    return Status::IOError("manifest " + path + ": payload CRC mismatch");
  }

  ManifestData m;
  uint32_t size_ratio, num_shards, num_levels;
  uint8_t policy, allocation, fence_skip, migration, kind;
  bool ok = GetFixed(blob, &pos, &size_ratio) &&
            GetFixed(blob, &pos, &policy) &&
            GetFixed(blob, &pos, &allocation) &&
            GetFixed(blob, &pos, &fence_skip) &&
            GetFixed(blob, &pos, &migration) &&
            GetFixed(blob, &pos, &kind) &&
            GetFixed(blob, &pos, &m.buffer_entries) &&
            GetFixed(blob, &pos, &m.entries_per_page) &&
            GetFixed(blob, &pos, &m.filter_bits_per_entry) &&
            GetFixed(blob, &pos, &num_shards) &&
            GetFixed(blob, &pos, &m.tuning_epoch) &&
            GetFixed(blob, &pos, &m.next_seq) &&
            GetFixed(blob, &pos, &m.next_file_id) &&
            GetFixed(blob, &pos, &num_levels);
  if (!ok) return Status::IOError("manifest " + path + ": short payload");
  m.size_ratio = static_cast<int>(size_ratio);
  m.policy = policy;
  m.filter_allocation = allocation;
  m.fence_pointer_skip = fence_skip != 0;
  m.migration_pending = migration != 0;
  m.kind = kind;
  m.num_shards = static_cast<int>(num_shards);
  m.levels.resize(num_levels);
  for (auto& level : m.levels) {
    uint32_t num_runs;
    if (!GetFixed(blob, &pos, &num_runs)) {
      return Status::IOError("manifest " + path + ": short level header");
    }
    level.resize(num_runs);
    for (ManifestRun& run : level) {
      if (!GetFixed(blob, &pos, &run.segment) ||
          !GetFixed(blob, &pos, &run.num_entries) ||
          !GetFixed(blob, &pos, &run.tuning_epoch) ||
          !GetFixed(blob, &pos, &run.bloom_bits_per_entry)) {
        return Status::IOError("manifest " + path + ": short run record");
      }
    }
  }
  return m;
}

StatusOr<std::shared_ptr<Run>> RebuildRun(PageStore* store,
                                          const ManifestRun& meta,
                                          uint64_t entries_per_page) {
  const size_t num_pages =
      (meta.num_entries + entries_per_page - 1) / entries_per_page;
  auto bloom = std::make_unique<BloomFilter>(meta.num_entries,
                                             meta.bloom_bits_per_entry);
  std::vector<Key> first_keys;
  first_keys.reserve(num_pages);
  Key last_key = 0;
  PageBuffer scratch(entries_per_page);
  for (size_t page = 0; page < num_pages; ++page) {
    const StatusOr<PageView> view =
        store->ReadPageView(meta.segment, page, IoContext::kRecovery,
                            &scratch);
    ENDURE_RETURN_IF_ERROR(view.status());
    if (view->size == 0) {
      return Status::Corruption("empty page " + std::to_string(page) +
                                " in recovered segment " +
                                std::to_string(meta.segment));
    }
    first_keys.push_back((*view)[0].key);
    for (const Entry& e : *view) {
      bloom->Add(e.key);
      last_key = e.key;
    }
  }
  auto fences =
      std::make_unique<FencePointers>(std::move(first_keys), last_key);
  auto run = std::make_shared<Run>(store, meta.segment, std::move(bloom),
                                   std::move(fences), meta.num_entries,
                                   meta.bloom_bits_per_entry);
  run->set_tuning_epoch(meta.tuning_epoch);
  return run;
}

}  // namespace endure::lsm
