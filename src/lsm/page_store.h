// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Page-granular storage for sorted runs with exhaustive I/O accounting.
// Every page access is counted against the shared Statistics — the engine
// equivalent of the paper's setup (direct I/O enabled, block cache
// disabled, so every logical access is a device access).
//
// Two backends: MemPageStore (default; pages live in RAM but are accounted
// as device pages) and FilePageStore (pages serialized to files via POSIX
// pread/pwrite for end-to-end realism).

#ifndef ENDURE_LSM_PAGE_STORE_H_
#define ENDURE_LSM_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lsm/entry.h"
#include "lsm/statistics.h"
#include "util/macros.h"
#include "util/status.h"

namespace endure::lsm {

/// Handle to an immutable on-"disk" segment of pages.
using SegmentId = uint64_t;

/// Abstract page-granular segment store.
class PageStore {
 public:
  /// `entries_per_page` is the page capacity B; `stats` receives all I/O.
  PageStore(uint64_t entries_per_page, Statistics* stats)
      : entries_per_page_(entries_per_page), stats_(stats) {
    ENDURE_CHECK(entries_per_page >= 1);
    ENDURE_CHECK(stats != nullptr);
  }
  virtual ~PageStore() = default;
  ENDURE_DISALLOW_COPY_AND_ASSIGN(PageStore);

  /// Persists `entries` (already sorted) as a new segment, counting one
  /// page write per page against `ctx`. Returns the new segment's id.
  virtual SegmentId WriteSegment(const std::vector<Entry>& entries,
                                 IoContext ctx) = 0;

  /// Reads page `page_idx` of `segment` into `out` (cleared first),
  /// counting one page read against `ctx`.
  virtual void ReadPage(SegmentId segment, size_t page_idx, IoContext ctx,
                        std::vector<Entry>* out) const = 0;

  /// Releases a segment's storage.
  virtual void FreeSegment(SegmentId segment) = 0;

  /// Number of pages in a segment.
  virtual size_t NumPages(SegmentId segment) const = 0;

  /// Number of entries in a segment.
  virtual size_t NumEntries(SegmentId segment) const = 0;

  uint64_t entries_per_page() const { return entries_per_page_; }
  Statistics* stats() const { return stats_; }

 protected:
  uint64_t entries_per_page_;
  Statistics* stats_;
};

/// RAM-backed store (default experimental substrate).
class MemPageStore final : public PageStore {
 public:
  MemPageStore(uint64_t entries_per_page, Statistics* stats)
      : PageStore(entries_per_page, stats) {}

  SegmentId WriteSegment(const std::vector<Entry>& entries,
                         IoContext ctx) override;
  void ReadPage(SegmentId segment, size_t page_idx, IoContext ctx,
                std::vector<Entry>* out) const override;
  void FreeSegment(SegmentId segment) override;
  size_t NumPages(SegmentId segment) const override;
  size_t NumEntries(SegmentId segment) const override;

 private:
  SegmentId next_id_ = 1;
  std::unordered_map<SegmentId, std::vector<Entry>> segments_;
};

/// File-backed store: one file per segment under `dir`, fixed-width binary
/// entry encoding, page-aligned pread/pwrite.
class FilePageStore final : public PageStore {
 public:
  /// Creates `dir` if needed; aborts on unusable directories.
  FilePageStore(uint64_t entries_per_page, Statistics* stats,
                std::string dir);
  ~FilePageStore() override;

  SegmentId WriteSegment(const std::vector<Entry>& entries,
                         IoContext ctx) override;
  void ReadPage(SegmentId segment, size_t page_idx, IoContext ctx,
                std::vector<Entry>* out) const override;
  void FreeSegment(SegmentId segment) override;
  size_t NumPages(SegmentId segment) const override;
  size_t NumEntries(SegmentId segment) const override;

  /// Bytes of one serialized entry on disk.
  static constexpr size_t kEntryBytes = 8 + 8 + 8 + 1;

 private:
  struct SegmentMeta {
    int fd = -1;
    size_t num_entries = 0;
  };
  std::string PathFor(SegmentId id) const;

  std::string dir_;
  std::string instance_tag_;  ///< unique per process+instance (see .cc)
  SegmentId next_id_ = 1;
  std::unordered_map<SegmentId, SegmentMeta> segments_;
};

/// Factory over Options::backend.
std::unique_ptr<PageStore> MakePageStore(uint64_t entries_per_page,
                                         Statistics* stats,
                                         int backend /* StorageBackend */,
                                         const std::string& dir);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_PAGE_STORE_H_
