// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Page-granular storage for sorted runs with exhaustive I/O accounting.
// Every page access is counted against the shared Statistics — the engine
// equivalent of the paper's setup (direct I/O enabled, block cache
// disabled, so every logical access is a device access).
//
// The hot path is allocation-free: reads fill a caller-owned PageBuffer
// that is reused across calls, and writers stream pages out one at a time
// (open segment -> AppendPage -> Seal) so flushes and compactions never
// materialize a whole run in memory.
//
// Two backends: MemPageStore (default; pages live in RAM but are accounted
// as device pages) and FilePageStore (pages serialized to files via POSIX
// pread/pwrite for end-to-end realism). Stores synchronize their segment
// tables internally, so background maintenance can stream merge I/O while
// the foreground serves reads: concurrent readers, writers and FreeSegment
// on *distinct* segments are safe. What stays with the caller: a segment is
// immutable once sealed, is never read before Seal, and is freed only after
// its last reader is gone (Run's destructor pairs with its shared_ptr).

#ifndef ENDURE_LSM_PAGE_STORE_H_
#define ENDURE_LSM_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lsm/entry.h"
#include "lsm/statistics.h"
#include "util/macros.h"
#include "util/status.h"

namespace endure::lsm {

class BlockCache;

/// Handle to an immutable on-"disk" segment of pages.
using SegmentId = uint64_t;

/// A reusable, caller-owned buffer holding one page worth of entries.
/// Allocates once (on Reserve or construction) and is then filled in place
/// by PageStore::ReadPage, so steady-state reads perform no heap
/// allocations.
class PageBuffer {
 public:
  PageBuffer() = default;
  explicit PageBuffer(size_t capacity) { Reserve(capacity); }

  // Moves leave the source empty (capacity 0), so a moved-from buffer can
  // be safely re-Reserved.
  PageBuffer(PageBuffer&& other) noexcept
      : entries_(std::move(other.entries_)),
        capacity_(std::exchange(other.capacity_, 0)),
        size_(std::exchange(other.size_, 0)) {}
  PageBuffer& operator=(PageBuffer&& other) noexcept {
    entries_ = std::move(other.entries_);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
    return *this;
  }

  /// Ensures room for `capacity` entries. Growing discards contents.
  void Reserve(size_t capacity) {
    if (capacity <= capacity_) return;
    entries_ = std::make_unique<Entry[]>(capacity);
    capacity_ = capacity;
    size_ = 0;
  }

  Entry* data() { return entries_.get(); }
  const Entry* data() const { return entries_.get(); }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Sets the number of valid entries (filled externally via data()).
  void set_size(size_t n) {
    ENDURE_DCHECK(n <= capacity_);
    size_ = n;
  }

  Entry& operator[](size_t i) {
    ENDURE_DCHECK(i < size_);
    return entries_[i];
  }
  const Entry& operator[](size_t i) const {
    ENDURE_DCHECK(i < size_);
    return entries_[i];
  }

  const Entry* begin() const { return entries_.get(); }
  const Entry* end() const { return entries_.get() + size_; }

 private:
  std::unique_ptr<Entry[]> entries_;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

/// A borrowed, read-only view of one page of entries. Views returned by
/// ReadPageView stay valid until the segment is freed (memory backend) or
/// until the scratch buffer passed in is reused (file backend).
struct PageView {
  const Entry* data = nullptr;
  size_t size = 0;

  const Entry* begin() const { return data; }
  const Entry* end() const { return data + size; }
  const Entry& operator[](size_t i) const { return data[i]; }
};

/// Abstract page-granular segment store.
class PageStore {
 public:
  /// Streams one segment to the store page-at-a-time. Obtain from
  /// PageStore::NewSegmentWriter, append pages in order, then Seal.
  /// Destroying an unsealed writer — including after a failed append or
  /// seal — abandons the segment (its storage is released; pages already
  /// appended stay counted — the device I/O happened).
  class SegmentWriter {
   public:
    virtual ~SegmentWriter() = default;

    /// Appends one page of `count` entries (1 <= count <=
    /// entries_per_page). Every page except the final one must be full.
    /// Counts one page write against the writer's IoContext. On error
    /// (failed create, short write, ENOSPC, ...) the segment is unusable:
    /// drop the writer to abandon it.
    virtual Status AppendPage(const Entry* entries, size_t count) = 0;

    /// Finalizes the segment (at least one page appended) and returns its
    /// id. May be called once; no appends afterwards. On error (e.g. the
    /// durability fsync failed) the segment is NOT registered — drop the
    /// writer to abandon it.
    virtual StatusOr<SegmentId> Seal() = 0;
  };

  /// `entries_per_page` is the page capacity B; `stats` receives all I/O.
  PageStore(uint64_t entries_per_page, Statistics* stats)
      : entries_per_page_(entries_per_page), stats_(stats) {
    ENDURE_CHECK(entries_per_page >= 1);
    ENDURE_CHECK(stats != nullptr);
  }
  virtual ~PageStore() = default;
  ENDURE_DISALLOW_COPY_AND_ASSIGN(PageStore);

  /// Opens a streaming writer for a new segment. Creating the writer
  /// performs (and counts) no I/O; each AppendPage counts one page write
  /// against `ctx`.
  virtual std::unique_ptr<SegmentWriter> NewSegmentWriter(IoContext ctx) = 0;

  /// Convenience: persists `entries` (already sorted, non-empty) as a new
  /// segment through a SegmentWriter. Accounting is identical to streaming
  /// the pages by hand. On error the partial segment is abandoned.
  StatusOr<SegmentId> WriteSegment(const std::vector<Entry>& entries,
                                   IoContext ctx);

  /// Reads page `page_idx` of `segment`, counting one page read against
  /// `ctx`, and returns a borrowed view of its entries. Backends that hold
  /// pages in directly usable form (MemPageStore) return a pointer into
  /// the segment without copying; backends that must materialize
  /// (FilePageStore) decode into `scratch` — reserved and reused in place,
  /// no allocation once warm — and return a view of it. Read failures and
  /// checksum mismatches (file backend, verification enabled) surface as
  /// IOError / Corruption.
  virtual StatusOr<PageView> ReadPageView(SegmentId segment, size_t page_idx,
                                          IoContext ctx,
                                          PageBuffer* scratch) const = 0;

  /// Convenience over ReadPageView: reads page `page_idx` into `out`
  /// (always materialized there), counting one page read against `ctx`.
  Status ReadPage(SegmentId segment, size_t page_idx, IoContext ctx,
                  PageBuffer* out) const;

  /// Releases a segment's storage.
  virtual void FreeSegment(SegmentId segment) = 0;

  /// Number of pages in a segment.
  virtual size_t NumPages(SegmentId segment) const = 0;

  /// Number of entries in a segment.
  virtual size_t NumEntries(SegmentId segment) const = 0;

  uint64_t entries_per_page() const { return entries_per_page_; }
  Statistics* stats() const { return stats_; }

  /// Attaches the deployment-wide block cache (nullable to detach). The
  /// store registers itself under a unique cache store id; afterwards
  /// point- and range-query reads are served from the cache on a hit and
  /// admit verified pages on a miss, while flush/compaction/recovery I/O
  /// bypasses it entirely. Call before the store is used concurrently.
  void set_block_cache(BlockCache* cache);
  BlockCache* block_cache() const { return cache_; }

 protected:
  /// On a hit, fills `scratch` from the cache, counts the hit and returns
  /// true. Only fires for point/range contexts with the cache attached and
  /// non-zero capacity; counts a miss otherwise within those constraints.
  bool CacheLookup(SegmentId segment, size_t page_idx, IoContext ctx,
                   PageBuffer* scratch) const;
  /// Admits one decoded, verified page (same gating as CacheLookup).
  void CacheAdmit(SegmentId segment, size_t page_idx, IoContext ctx,
                  const Entry* entries, size_t count) const;
  /// Drops a freed segment's pages from the cache.
  void CacheErase(SegmentId segment) const;

  uint64_t entries_per_page_;
  Statistics* stats_;
  BlockCache* cache_ = nullptr;
  uint64_t cache_store_id_ = 0;
};

/// RAM-backed store (default experimental substrate). Segment ids encode
/// a dense slot index plus a generation tag: lookups are one indexed load
/// (no hashing), freed slots are recycled through a free list (the store
/// does not grow with the number of segments ever created), and a stale
/// id — a reader outliving FreeSegment — still aborts loudly because its
/// generation no longer matches.
class MemPageStore final : public PageStore {
 public:
  MemPageStore(uint64_t entries_per_page, Statistics* stats)
      : PageStore(entries_per_page, stats) {}

  std::unique_ptr<SegmentWriter> NewSegmentWriter(IoContext ctx) override;
  StatusOr<PageView> ReadPageView(SegmentId segment, size_t page_idx,
                                  IoContext ctx,
                                  PageBuffer* scratch) const override;
  void FreeSegment(SegmentId segment) override;
  size_t NumPages(SegmentId segment) const override;
  size_t NumEntries(SegmentId segment) const override;

 private:
  class Writer;

  struct Slot {
    uint64_t generation = 0;           ///< matches the id's upper bits
    std::unique_ptr<std::vector<Entry>> data;  ///< null when free
  };

  static size_t SlotIndex(SegmentId id) { return id & 0xffffffffu; }
  static uint64_t Generation(SegmentId id) { return id >> 32; }

  const std::vector<Entry>* SlotData(SegmentId segment) const;

  /// Guards the slot table (slots_ itself may reallocate when a new slot
  /// is added). The entry vectors hang off stable heap allocations, so a
  /// borrowed PageView or a Writer's cached vector pointer survives table
  /// growth without holding the lock.
  mutable std::mutex mu_;
  uint64_t next_generation_ = 1;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

/// File-backed store: one file per segment under `dir`, fixed-width binary
/// entry encoding, page-aligned pread/pwrite through a per-store aligned
/// scratch buffer (reads decode in place; no per-read allocation).
///
/// On-disk page format: each page is PageBytes() of encoded entries
/// (zero-padded past the valid count) followed by an 8-byte footer —
/// a little-endian u32 entry count and a u32 CRC-32 (the WAL/manifest
/// polynomial) over the payload plus the count. The footer is always
/// written; verification on read is controlled by set_verify_checksums
/// (every read) and set_scrub_on_recovery (recovery-context reads only),
/// and a mismatch — bit-rot, a torn page, a truncated file — returns
/// Corruption and bumps Statistics::checksum_failures instead of serving
/// the damaged page. See docs/durability.md.
///
/// Two lifetimes:
/// - Ephemeral (default): segment names carry a per-process instance tag
///   (several stores can share a directory) and every file is unlinked
///   when freed or when the store is destroyed — the pre-durability
///   behaviour the experiments use.
/// - Persistent (`persistent = true`): segment names are stable
///   (`seg_<id>.run`), Seal() fsyncs the file before the segment becomes
///   referenceable, destruction keeps all files, FreeSegment defers the
///   unlink until PurgePendingDeletes() (called after the next manifest
///   publication, so a crash never leaves the manifest pointing at a
///   deleted file), and AdoptSegment() re-registers a file from a
///   previous process at recovery. See docs/durability.md.
class FilePageStore final : public PageStore {
 public:
  /// Creates `dir` if needed (best effort; segment creation reports the
  /// failure if the directory is unusable).
  FilePageStore(uint64_t entries_per_page, Statistics* stats,
                std::string dir, bool persistent = false);
  ~FilePageStore() override;

  std::unique_ptr<SegmentWriter> NewSegmentWriter(IoContext ctx) override;
  StatusOr<PageView> ReadPageView(SegmentId segment, size_t page_idx,
                                  IoContext ctx,
                                  PageBuffer* scratch) const override;
  void FreeSegment(SegmentId segment) override;
  size_t NumPages(SegmentId segment) const override;
  size_t NumEntries(SegmentId segment) const override;

  /// Bytes of one serialized entry on disk (the shared Entry encoding).
  static constexpr size_t kEntryBytes = kEncodedEntryBytes;

  /// Bytes of the per-page integrity footer: u32 entry count + u32 CRC-32.
  static constexpr size_t kPageFooterBytes = 8;

  bool persistent() const { return persistent_; }

  /// Verify the page CRC on every read (default on). Off, reads trust the
  /// device; the footer is still written.
  void set_verify_checksums(bool v) { verify_checksums_ = v; }
  bool verify_checksums() const { return verify_checksums_; }

  /// Verify the page CRC on IoContext::kRecovery reads even when
  /// verify_checksums is off — the recovery-time scrub (default on).
  void set_scrub_on_recovery(bool v) { scrub_on_recovery_ = v; }
  bool scrub_on_recovery() const { return scrub_on_recovery_; }

  /// Re-registers segment `id` (written by an earlier process) from its
  /// file, verifying the file covers `num_entries` entries. Persistent
  /// stores only; bumps next_id() past `id`.
  Status AdoptSegment(SegmentId id, size_t num_entries);

  /// Unlinks every file whose FreeSegment was deferred (persistent mode).
  /// Call after the manifest that stopped referencing them is on disk.
  void PurgePendingDeletes();

  /// Unlinks `seg_*.run` files not currently registered — the leftovers
  /// of a crash between a segment write and the manifest publication.
  /// Call at recovery, after adopting every manifest-referenced segment.
  Status RemoveUnreferencedSegments();

  /// First id NewSegmentWriter will hand out; persisted in the manifest
  /// so ids are never reused across restarts.
  SegmentId next_id() const { return next_id_; }
  void set_next_id(SegmentId id) {
    if (id > next_id_) next_id_ = id;
  }

 private:
  class Writer;
  friend class Writer;

  struct SegmentMeta {
    int fd = -1;
    size_t num_entries = 0;
  };
  std::string PathFor(SegmentId id) const;
  /// Payload bytes of one page (entries only).
  size_t PageBytes() const { return kEntryBytes * entries_per_page_; }
  /// On-disk bytes of one page (payload + integrity footer).
  size_t PageDiskBytes() const { return PageBytes() + kPageFooterBytes; }

  using AlignedBuf = std::unique_ptr<char, void (*)(void*)>;

  /// Borrows one aligned PageDiskBytes() scratch buffer from the pool
  /// (allocating on a dry pool; null on allocation failure — surfaced as
  /// a Status, not an abort). Return with ReturnScratch.
  AlignedBuf BorrowScratch() const;
  void ReturnScratch(AlignedBuf buf) const;

  std::string dir_;
  bool persistent_;
  bool verify_checksums_ = true;
  bool scrub_on_recovery_ = true;
  std::string instance_tag_;  ///< unique per process+instance (see .cc)
  /// Guards the segment table, id counter, deferred deletes and the
  /// scratch pool. Never held across device I/O: reads copy the fd and
  /// borrow a scratch buffer under the lock, then pread/decode outside it.
  mutable std::mutex mu_;
  SegmentId next_id_ = 1;
  std::unordered_map<SegmentId, SegmentMeta> segments_;
  std::vector<std::string> pending_deletes_;  ///< persistent mode only
  /// Page-aligned read buffers, one borrowed per in-flight read; the pool
  /// high-water mark is the read concurrency (foreground + merge threads),
  /// so steady-state reads still allocate nothing.
  mutable std::vector<AlignedBuf> read_scratch_pool_;
};

/// Factory over Options::backend. `persistent` selects FilePageStore's
/// durable lifetime; `verify_checksums` / `scrub_on_recovery` configure
/// its read-side CRC verification (all three ignored by the memory
/// backend).
std::unique_ptr<PageStore> MakePageStore(uint64_t entries_per_page,
                                         Statistics* stats,
                                         int backend /* StorageBackend */,
                                         const std::string& dir,
                                         bool persistent = false,
                                         bool verify_checksums = true,
                                         bool scrub_on_recovery = true);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_PAGE_STORE_H_
