// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Configuration of the endure::lsm storage engine — the from-scratch LSM
// tree used as the system-evaluation substrate (the paper uses RocksDB with
// event hooks that force exactly this textbook behaviour: classic
// leveling/tiering, per-level Monkey filters, direct I/O, no block cache).

#ifndef ENDURE_LSM_OPTIONS_H_
#define ENDURE_LSM_OPTIONS_H_

#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/wal_sync_mode.h"

namespace endure::lsm {

/// Compaction policy of the engine (mirrors endure::Policy; duplicated so
/// the engine has no dependency on the tuner library).
enum class CompactionPolicy {
  kLeveling = 0,      ///< at most one run per level, eager merging
  kTiering = 1,       ///< up to T-1 runs per level, lazy merging
  kLazyLeveling = 2,  ///< Dostoevsky hybrid: bottom leveled, rest tiered
};

/// Bloom-filter memory allocation across levels.
enum class FilterAllocation {
  kMonkey = 0,   ///< optimal per-level false-positive rates (Eq. 11)
  kUniform = 1,  ///< equal bits-per-entry everywhere (classical baseline)
};

/// Storage backend for sorted runs.
enum class StorageBackend {
  kMemory = 0,  ///< in-memory pages with full I/O accounting (default)
  kFile = 1,    ///< file-backed pages via POSIX pread/pwrite
};

/// Engine configuration.
struct Options {
  /// Size ratio T between adjacent levels (>= 2). Fractional tunings are
  /// rounded up before deployment, as in the paper's Section 8.3.
  int size_ratio = 10;

  /// Compaction policy pi.
  CompactionPolicy policy = CompactionPolicy::kLeveling;

  /// Write buffer (memtable) capacity in entries (m_buf / E).
  uint64_t buffer_entries = 1024;

  /// Entries per page (B). Page reads/writes are the engine's I/O unit.
  uint64_t entries_per_page = 4;

  /// Bloom filter budget in bits per entry (h = m_filt / N).
  double filter_bits_per_entry = 5.0;

  /// How the filter budget is split across levels.
  FilterAllocation filter_allocation = FilterAllocation::kMonkey;

  /// When true (RocksDB behaviour), point and range lookups skip runs whose
  /// [min,max] key range cannot contain the target — the fence-pointer
  /// short-circuit the paper cites to explain its Fig. 8 range-session
  /// discrepancy. Disable to match the analytical model exactly.
  bool fence_pointer_skip = true;

  /// Storage backend for runs.
  StorageBackend backend = StorageBackend::kMemory;

  /// Directory for the file backend (ignored by the memory backend).
  /// ShardedDB gives each shard its own subdirectory underneath.
  std::string storage_dir = "/tmp/endure_lsm";

  /// Number of hash-partitioned shards a ShardedDB front-end opens
  /// (>= 1). Each shard is an independent LsmTree with its own page
  /// store, statistics and memtable of `buffer_entries` entries; a plain
  /// DB ignores the knob.
  int num_shards = 1;

  /// When true the engine never flushes inline on a full memtable:
  /// Put/Delete seal the full buffer into an immutable slot that stays
  /// readable until a maintenance job (ShardedDB's background worker, or
  /// the next seal as inline fallback) flushes it. When false (default)
  /// a full memtable flushes inline, preserving the single-threaded
  /// behaviour the experiments measure.
  bool background_maintenance = false;

  /// Crash-safe persistence (docs/durability.md): every write is logged
  /// to a per-tree write-ahead log before it is acknowledged, and every
  /// structural change (flush, compaction, migration step, retune)
  /// publishes a versioned manifest, so DB::Open / ShardedDB::Open on an
  /// existing storage_dir replays the WAL, rebuilds the levels and
  /// resumes the persisted tuning — including a mid-flight migration —
  /// instead of starting empty. Requires the file backend. Off by
  /// default: the experiments measure a volatile engine.
  bool durability = false;

  /// When an acknowledged write is guaranteed on the device (ignored
  /// unless `durability`). kNone trusts the page cache (fastest; clean
  /// close still syncs), kBackground bounds the loss window to
  /// wal_sync_interval_ms, kPerBatch fsyncs inside every commit — the
  /// mode the kill-point tests assert zero acked-write loss under.
  WalSyncMode wal_sync_mode = WalSyncMode::kBackground;

  /// Cadence of the background WAL flusher (kBackground only), >= 1.
  int wal_sync_interval_ms = 10;

  /// Worker threads ShardedDB::Open uses to recover shard directories
  /// concurrently (per-shard recovery is fully independent, so restart
  /// latency is the max over shards instead of the sum). 0 (default)
  /// auto-sizes to min(num_shards, hardware threads); 1 forces the
  /// serial open the recovery benchmark baselines against. A fresh
  /// (non-recovering) durable open builds its shard directories on the
  /// same workers; a plain DB ignores the knob. Operational, not part
  /// of the persisted tuning: each restart may choose anew.
  int recovery_threads = 0;

  /// Under WalSyncMode::kBackground, drive every shard's WAL fsyncs
  /// from one shared util::WalFlushService thread owned by the
  /// DB/ShardedDB (default) instead of one interval thread per shard's
  /// writer. fsync errors still latch per shard; the loss window is
  /// wal_sync_interval_ms plus the tail of the current sync pass (one
  /// thread fsyncs the dirty shards serially — see docs/operations.md).
  /// Disable to reproduce the legacy per-shard-thread topology
  /// (benchmarks do) or when per-shard fsyncs are slow enough to sum
  /// past the interval.
  bool shared_wal_flusher = true;

  /// Verify the per-page CRC on every segment page read (file backend;
  /// the footer is always written regardless). Catches bit-rot and torn
  /// pages at the cost of one CRC pass per page read. Immutable at open.
  bool verify_checksums = true;

  /// Verify page CRCs while rebuilding runs at recovery even when
  /// verify_checksums is off — a one-time scrub of every referenced page,
  /// failing the open with Corruption instead of serving damaged data.
  /// Immutable at open.
  bool scrub_on_recovery = true;

  /// Background maintenance (flush/compaction/migration) retries a failed
  /// job this many times with exponential backoff before declaring the
  /// fault permanent and latching the tree read-only (see DB::Health and
  /// docs/operations.md). 0 latches on the first failure.
  int background_max_retries = 4;

  /// First retry backoff in milliseconds (doubles per attempt, capped at
  /// 1000ms), >= 1. Backoff never occupies a maintenance worker: the
  /// scheduler requeues the retry on a deadline (see
  /// docs/architecture.md, "Compaction scheduler").
  int background_retry_base_ms = 1;

  /// Background compaction I/O budget in bytes/second (0 = unlimited).
  /// Charged against merge reads and writes via a token bucket; memtable
  /// flushes are exempt (they bound write stalls, throttling them would
  /// amplify the stalls the limiter exists to prevent). Mutable via
  /// ApplyTuning. See docs/operations.md.
  uint64_t compaction_rate_bytes_per_sec = 0;

  /// Merges spanning at least this many input pages are partitioned by
  /// key range (split points from the fence pointers) into parallel
  /// subtasks. 0 disables partitioning. Small merges stay single-stream
  /// so their page-exact I/O accounting is unchanged (partition boundary
  /// pages are read by two subtasks).
  uint64_t compaction_partition_min_pages = 256;

  /// Upper bound on parallel subtasks per partitioned merge. 0 = auto
  /// (hardware threads, capped at 8); 1 disables partitioning.
  int compaction_max_subtasks = 0;

  /// Write-path backpressure threshold on level-1 run count (background
  /// maintenance only): a Put into a shard whose L1 holds more runs than
  /// this stalls (off the shard lock) until maintenance catches up.
  /// 0 = auto (size_ratio + 2). See docs/operations.md.
  int l1_stall_runs = 0;

  /// Worker threads of the ShardedDB maintenance pool. 0 = auto
  /// (min(num_shards, hardware threads)). Operational, not persisted.
  int maintenance_threads = 0;

  /// Capacity of the deployment-wide block cache in bytes (0 = off).
  /// The cache is shared by every shard's page store and serves
  /// checksum-verified pages to point and range queries only, so
  /// compaction/recovery I/O accounting stays deterministic. Mutable via
  /// ApplyTuning when the cache was enabled at open (capacity resize);
  /// enabling a cache on a deployment opened without one requires a
  /// reopen. See docs/operations.md.
  uint64_t block_cache_bytes = 0;

  /// One global memory budget in bytes arbitrated between the write
  /// buffers (num_shards memtables) and the block cache (0 = static
  /// split, arbiter off). When set, a MemoryArbiter periodically
  /// re-splits the budget to match the observed read/write mix: read-
  /// heavy phases grow the cache and shrink the buffers, write-heavy
  /// phases do the opposite. Requires block_cache_bytes > 0 (the initial
  /// cache share). Mutable via ApplyTuning under the same reopen rule as
  /// block_cache_bytes. See docs/operations.md.
  uint64_t memory_budget_bytes = 0;

  /// OK iff every knob is in range.
  Status Validate() const;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_OPTIONS_H_
