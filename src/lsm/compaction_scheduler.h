// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// A priority scheduler for background maintenance jobs. ShardedDB enqueues
// one job per shard that has pending work; the scheduler admits at most
// `max_parallel` of them to the thread pool at a time, strictly by
// priority (flush = 0 beats migration step = 1 beats major compaction = 2,
// FIFO within a priority). Keeping admission narrower than the pool means
// the pool's FIFO queue can never invert priorities — a job only enters
// the pool when it is the most urgent job waiting.
//
// Failed jobs retry via EnqueueDelayed: the job is parked on a deadline
// min-heap serviced by a timer thread and re-enters the priority queue
// when its deadline passes. No worker sleeps while a job waits out its
// backoff, so one shard's retry storm cannot starve other shards (the bug
// this scheduler replaces: RunMaintenance slept its backoff ON a pool
// worker).
//
// The scheduler also owns the merge RateLimiter shared by every admitted
// compaction, so ApplyTuning can retune throughput for all shards in one
// place.

#ifndef ENDURE_LSM_COMPACTION_SCHEDULER_H_
#define ENDURE_LSM_COMPACTION_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "lsm/compaction.h"
#include "lsm/statistics.h"
#include "util/macros.h"

namespace endure {
class ThreadPool;
}  // namespace endure

namespace endure::lsm {

/// Priority-ordered admission gate in front of a ThreadPool, plus a timer
/// for deadline-based retry requeues and the shared merge RateLimiter.
/// Thread-safe. The owner must keep the pool alive until after Stop() and
/// the pool's own shutdown have both completed (jobs in flight call back
/// into the scheduler when they finish).
class CompactionScheduler {
 public:
  struct Config {
    /// Jobs admitted to the pool concurrently (>= 1). Admitting fewer
    /// jobs than the pool has threads leaves workers free for partitioned
    /// merge subtasks.
    size_t max_parallel = 1;

    /// Aggregate merge throttle in bytes/sec; 0 = unlimited.
    uint64_t rate_bytes_per_sec = 0;
  };

  /// `stats` receives sched_jobs / sched_requeues / sched_queue_peak;
  /// may be null. The pool is borrowed, not owned.
  CompactionScheduler(ThreadPool* pool, const Config& config,
                      Statistics* stats);
  ~CompactionScheduler();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(CompactionScheduler);

  /// Queues `fn` at `priority` (lower runs first; FIFO within equal
  /// priority). Returns false — dropping the job — after Stop(), so
  /// callers can fall back to inline maintenance.
  bool Enqueue(int priority, std::function<void()> fn);

  /// Queues `fn` to become runnable `delay_ms` from now (the retry/backoff
  /// path; counts as a sched_requeue). The delay is served by the timer
  /// thread — no pool worker is occupied while the job waits.
  bool EnqueueDelayed(int priority, uint64_t delay_ms,
                      std::function<void()> fn);

  /// Blocks until no job is queued, delayed, or running. A job that
  /// re-enqueues itself BEFORE returning (the shard maintenance loop)
  /// never lets the count dip to zero mid-cascade.
  void WaitIdle();

  /// Drops every queued and delayed job, releases rate-limiter waiters,
  /// and joins the timer thread. Jobs already handed to the pool keep
  /// running (the pool's own shutdown is the owner's barrier for those).
  /// Idempotent; the destructor calls it.
  void Stop();

  /// True after Stop(). Stalled writers poll this to abandon
  /// backpressure waits during shutdown.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  RateLimiter* limiter() { return &limiter_; }
  ThreadPool* subtask_pool() { return pool_; }

 private:
  struct Job {
    int priority = 0;
    uint64_t seq = 0;  ///< FIFO tie-break within a priority
    std::function<void()> fn;
  };
  struct DelayedJob {
    std::chrono::steady_clock::time_point deadline;
    Job job;
  };

  /// Heap predicates for std::push_heap/pop_heap (top = front()).
  static bool ReadyAfter(const Job& a, const Job& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }
  static bool DelayedAfter(const DelayedJob& a, const DelayedJob& b) {
    return a.deadline > b.deadline;
  }

  /// Admits ready jobs while a pool slot is free (caller holds mu_).
  void DispatchLocked();

  /// Called on the pool worker when an admitted job returns.
  void OnJobFinished();

  /// Promotes delayed jobs whose deadline has passed.
  void TimerLoop();

  ThreadPool* const pool_;
  const size_t max_parallel_;
  Statistics* const stats_;
  RateLimiter limiter_;

  mutable std::mutex mu_;
  std::condition_variable timer_cv_;  ///< wakes TimerLoop (new job / stop)
  std::condition_variable idle_cv_;   ///< wakes WaitIdle
  std::vector<Job> ready_;            ///< heap: most urgent at front()
  std::vector<DelayedJob> delayed_;   ///< heap: earliest deadline at front()
  size_t in_pool_ = 0;                ///< jobs admitted and not yet finished
  size_t active_ = 0;                 ///< ready + delayed + in_pool
  uint64_t next_seq_ = 0;
  std::atomic<bool> stopped_{false};
  std::thread timer_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_COMPACTION_SCHEDULER_H_
