// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Fence pointers: the in-memory array of first-keys per page that lets a
// lookup touch at most one page per run (Section 2 "Optimizing Lookups").

#ifndef ENDURE_LSM_FENCE_POINTERS_H_
#define ENDURE_LSM_FENCE_POINTERS_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "lsm/entry.h"

namespace endure::lsm {

/// Immutable page index for one sorted run.
class FencePointers {
 public:
  /// `first_keys[i]` is the smallest key stored on page i; `last_key` is
  /// the largest key in the run. Pages must be non-empty and sorted.
  FencePointers(std::vector<Key> first_keys, Key last_key);

  /// Number of pages.
  size_t num_pages() const { return first_keys_.size(); }

  Key min_key() const { return first_keys_.front(); }
  Key max_key() const { return last_key_; }

  /// The page that could contain `key`, or nullopt when the key falls
  /// outside [min_key, max_key].
  std::optional<size_t> PageFor(Key key) const;

  /// The inclusive page range overlapping [lo, hi); nullopt when the range
  /// misses the run entirely. `hi` is exclusive.
  std::optional<std::pair<size_t, size_t>> PageRange(Key lo, Key hi) const;

  /// In-memory footprint in bits (for memory accounting).
  uint64_t SizeBits() const {
    return (first_keys_.size() + 1) * sizeof(Key) * 8;
  }

 private:
  std::vector<Key> first_keys_;
  Key last_key_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_FENCE_POINTERS_H_
