// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Fence pointers: the in-memory array of first-keys per page that lets a
// lookup touch at most one page per run (Section 2 "Optimizing Lookups").

#ifndef ENDURE_LSM_FENCE_POINTERS_H_
#define ENDURE_LSM_FENCE_POINTERS_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "lsm/entry.h"

namespace endure::lsm {

/// Immutable page index for one sorted run. Lookups go through a two-level
/// search: a sparse top index (every 64th first-key, small enough to stay
/// cache-resident for even the deepest runs) narrows the probe to one
/// 64-key window of the dense array, so a lookup touches a handful of hot
/// cache lines instead of log2(pages) cold ones.
class FencePointers {
 public:
  /// Top-index sampling rate (one sampled key per 2^6 = 64 pages).
  static constexpr size_t kSampleShift = 6;

  /// `first_keys[i]` is the smallest key stored on page i; `last_key` is
  /// the largest key in the run. Pages must be non-empty and sorted.
  FencePointers(std::vector<Key> first_keys, Key last_key);

  /// Number of pages.
  size_t num_pages() const { return first_keys_.size(); }

  /// Smallest key stored on page `page`. Partitioned compactions use these
  /// as key-range split points (every page boundary is a valid cut).
  Key first_key(size_t page) const { return first_keys_[page]; }

  Key min_key() const { return first_keys_.front(); }
  Key max_key() const { return last_key_; }

  /// The page that could contain `key`, or nullopt when the key falls
  /// outside [min_key, max_key].
  std::optional<size_t> PageFor(Key key) const;

  /// The inclusive page range overlapping [lo, hi); nullopt when the range
  /// misses the run entirely. `hi` is exclusive.
  std::optional<std::pair<size_t, size_t>> PageRange(Key lo, Key hi) const;

  /// In-memory footprint in bits (for memory accounting), including the
  /// sparse top index.
  uint64_t SizeBits() const {
    return (first_keys_.size() + top_keys_.size() + 1) * sizeof(Key) * 8;
  }

 private:
  /// Index of the last fence <= key (two-level). Requires key >= min_key.
  size_t LastFenceLessOrEqual(Key key) const;
  /// Index of the last fence < key (two-level). Requires key > min_key.
  size_t LastFenceLess(Key key) const;

  std::vector<Key> first_keys_;
  std::vector<Key> top_keys_;  ///< first_keys_[i << kSampleShift]
  Key last_key_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_FENCE_POINTERS_H_
