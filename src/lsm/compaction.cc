#include "lsm/compaction.h"

#include <algorithm>

#include "lsm/merge_iterator.h"
#include "lsm/run_builder.h"
#include "util/thread_pool.h"

namespace endure::lsm {

// ------------------------------------------------------------ RateLimiter --

RateLimiter::RateLimiter(uint64_t bytes_per_sec)
    : rate_(bytes_per_sec),
      tokens_(static_cast<double>(bytes_per_sec)),  // start with a burst
      last_refill_(std::chrono::steady_clock::now()) {}

void RateLimiter::RefillLocked(std::chrono::steady_clock::time_point now) {
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  if (rate_ == 0) return;
  tokens_ = std::min(tokens_ + elapsed * static_cast<double>(rate_),
                     static_cast<double>(rate_));  // burst = one second
}

uint64_t RateLimiter::Acquire(uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  if (rate_ == 0 || stopped_ || bytes == 0) return 0;
  const auto start = std::chrono::steady_clock::now();
  RefillLocked(start);
  while (!stopped_ && rate_ != 0 && tokens_ <= 0.0) {
    // Sleep until the bucket should surface, in bounded slices so a live
    // set_rate / Stop is picked up within ~100ms.
    const double deficit_sec = (1.0 - tokens_) / static_cast<double>(rate_);
    const auto deficit = std::chrono::milliseconds(
        static_cast<int64_t>(deficit_sec * 1000.0) + 1);
    cv_.wait_for(lock, std::min(deficit, std::chrono::milliseconds(100)));
    RefillLocked(std::chrono::steady_clock::now());
  }
  tokens_ -= static_cast<double>(bytes);  // may borrow below zero
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void RateLimiter::set_rate(uint64_t bytes_per_sec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked(std::chrono::steady_clock::now());
    const bool was_unlimited = rate_ == 0;
    rate_ = bytes_per_sec;
    if (rate_ != 0) {
      tokens_ = was_unlimited
                    ? static_cast<double>(rate_)
                    : std::min(tokens_, static_cast<double>(rate_));
    }
  }
  cv_.notify_all();
}

uint64_t RateLimiter::rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_;
}

void RateLimiter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

// ------------------------------------------------------------------ merge --

namespace {

constexpr uint64_t kChargeChunkBytes = 256 * 1024;

/// Accumulates logical merge bytes and charges the limiter one chunk at a
/// time, so Acquire's lock is taken a few times per megabyte rather than
/// per entry. Charges one Entry per merged key on the read side and one
/// per surviving key on the write side — duplicate-heavy merges are
/// charged slightly under their true read volume, which errs on the side
/// of letting reclamation work proceed.
class LimiterCharger {
 public:
  LimiterCharger(RateLimiter* limiter, Statistics* stats)
      : limiter_(limiter), stats_(stats) {}
  ~LimiterCharger() { Flush(); }

  void Charge(uint64_t bytes) {
    if (limiter_ == nullptr) return;
    pending_ += bytes;
    if (pending_ >= kChargeChunkBytes) Flush();
  }

  void Flush() {
    if (limiter_ == nullptr || pending_ == 0) return;
    const uint64_t waited = limiter_->Acquire(pending_);
    pending_ = 0;
    if (waited > 0) stats_->rate_limited_ms += waited;
  }

 private:
  RateLimiter* limiter_;
  Statistics* stats_;
  uint64_t pending_ = 0;
};

/// Run iterator clipped to the key range [lo, hi): entries below lo are
/// skipped at construction, the first entry at or above hi ends the
/// stream. Partition subtasks need this key-granular trim because page
/// bounds are page-granular — the edge pages straddle the cut.
class BoundedRunStream final : public EntryStream {
 public:
  BoundedRunStream(const Run* run, size_t start_page, size_t end_page,
                   bool has_lo, Key lo, bool has_hi, Key hi)
      : iter_(run, start_page, end_page, IoContext::kCompaction),
        has_hi_(has_hi),
        hi_(hi) {
    if (has_lo) {
      while (iter_.Valid() && iter_.entry().key < lo) iter_.Next();
    }
  }

  bool Valid() const override {
    return iter_.Valid() && !(has_hi_ && iter_.entry().key >= hi_);
  }
  const Entry& entry() const override { return iter_.entry(); }
  void Next() override { iter_.Next(); }

  const Status& status() const { return iter_.status(); }

 private:
  Run::Iterator iter_;
  bool has_hi_;
  Key hi_;
};

/// Last page whose first key is <= lo — where keys >= lo can begin.
size_t FirstOverlappingPage(const FencePointers& f, Key lo) {
  size_t l = 0, r = f.num_pages();
  while (l < r) {
    const size_t m = l + (r - l) / 2;
    if (f.first_key(m) <= lo) {
      l = m + 1;
    } else {
      r = m;
    }
  }
  return l == 0 ? 0 : l - 1;
}

/// Last page whose first key is < hi (hi exclusive). Returns false when
/// even the first page starts at or above hi (no overlap).
bool LastOverlappingPage(const FencePointers& f, Key hi, size_t* out) {
  size_t l = 0, r = f.num_pages();
  while (l < r) {
    const size_t m = l + (r - l) / 2;
    if (f.first_key(m) < hi) {
      l = m + 1;
    } else {
      r = m;
    }
  }
  if (l == 0) return false;
  *out = l - 1;
  return true;
}

/// Split keys for ~`target_parts` partitions, cut at fence boundaries of
/// the largest input (even page intervals). Strictly increasing; may come
/// back short — or empty — when the fences carry few distinct keys.
std::vector<Key> PickPartitionBounds(
    const std::vector<std::shared_ptr<Run>>& inputs, size_t target_parts) {
  const Run* largest = inputs.front().get();
  for (const auto& r : inputs) {
    if (r->num_pages() > largest->num_pages()) largest = r.get();
  }
  const FencePointers& f = largest->fences();
  std::vector<Key> bounds;
  for (size_t i = 1; i < target_parts; ++i) {
    const size_t page = i * f.num_pages() / target_parts;
    if (page == 0) continue;  // first_key(0) would make partition 0 empty
    const Key k = f.first_key(page);
    if (!bounds.empty() && k <= bounds.back()) continue;
    bounds.push_back(k);
  }
  return bounds;
}

StatusOr<std::shared_ptr<Run>> MergeSequential(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones, RateLimiter* limiter) {
  // Stack-owned adapters (reserve keeps the EntryStream pointers stable):
  // the merge consumes input pages one at a time while the builder streams
  // merged pages out, so working memory stays O(entries_per_page) per
  // input plus the output staging page — never the whole run.
  std::vector<StreamAdapter<Run::Iterator>> adapters;
  adapters.reserve(inputs.size());
  for (const auto& run : inputs) {
    adapters.emplace_back(run->NewIterator(IoContext::kCompaction));
  }
  std::vector<EntryStream*> heads;
  heads.reserve(adapters.size());
  for (auto& adapter : adapters) heads.push_back(&adapter);
  MergeIterator merge(std::move(heads));

  LimiterCharger charger(limiter, store->stats());
  RunBuilder builder(store, bits_per_entry, IoContext::kCompaction);
  for (; merge.Valid(); merge.Next()) {
    const Entry& e = merge.entry();
    charger.Charge(sizeof(Entry));  // read side
    if (!(drop_tombstones && e.is_tombstone())) {
      charger.Charge(sizeof(Entry));  // write side
      ENDURE_RETURN_IF_ERROR(builder.Add(e));
    }
  }
  // An input iterator that hit an I/O error looks exhausted to the merge;
  // treating that as a clean drain would silently shrink the output, so
  // check every input before accepting the result.
  for (const auto& adapter : adapters) {
    ENDURE_RETURN_IF_ERROR(adapter.iter().status());
  }
  if (builder.empty()) {
    return std::shared_ptr<Run>();  // everything consolidated away
  }
  return builder.Finish();
}

StatusOr<std::shared_ptr<Run>> MergePartitioned(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones, const MergeLimits& limits,
    const std::vector<Key>& bounds) {
  const size_t parts = bounds.size() + 1;
  Statistics* stats = store->stats();

  // Each partition merges its key slice into a staging vector; the slices
  // are disjoint ([bounds[k-1], bounds[k]) per partition), so feeding them
  // back in partition order yields one strictly-ascending entry sequence
  // identical to the sequential merge. Staging trades memory (the merged
  // output lives in RAM briefly) for parallel input reads — acceptable
  // because partitioning only kicks in on large merges, which are exactly
  // the ones worth overlapping.
  struct Partition {
    std::vector<Entry> entries;
    Status status;
  };
  std::vector<Partition> results(parts);
  RunSubtasks(limits.subtask_pool, parts, [&](size_t k) {
    const bool has_lo = k > 0;
    const bool has_hi = k + 1 < parts;
    const Key lo = has_lo ? bounds[k - 1] : Key{};
    const Key hi = has_hi ? bounds[k] : Key{};
    // Streams keep the inputs' relative order, so merge rank (newer
    // source first) is preserved even when some inputs miss the slice.
    std::vector<std::unique_ptr<BoundedRunStream>> streams;
    std::vector<EntryStream*> heads;
    for (const auto& run : inputs) {
      if (has_lo && run->max_key() < lo) continue;
      if (has_hi && run->min_key() >= hi) continue;
      const size_t start =
          has_lo ? FirstOverlappingPage(run->fences(), lo) : 0;
      size_t end = run->num_pages() - 1;
      if (has_hi && !LastOverlappingPage(run->fences(), hi, &end)) continue;
      if (end < start) continue;
      streams.push_back(std::make_unique<BoundedRunStream>(
          run.get(), start, end, has_lo, lo, has_hi, hi));
    }
    for (auto& s : streams) heads.push_back(s.get());
    MergeIterator merge(std::move(heads));
    LimiterCharger charger(limits.limiter, stats);
    for (; merge.Valid(); merge.Next()) {
      const Entry& e = merge.entry();
      charger.Charge(sizeof(Entry));  // read side
      if (!(drop_tombstones && e.is_tombstone())) {
        results[k].entries.push_back(e);
      }
    }
    for (const auto& s : streams) {
      if (!s->status().ok() && results[k].status.ok()) {
        results[k].status = s->status();
      }
    }
  });
  for (const auto& r : results) {
    ENDURE_RETURN_IF_ERROR(r.status);
  }
  ++stats->compactions_partitioned;
  stats->compaction_subtasks += parts;

  LimiterCharger charger(limits.limiter, stats);
  RunBuilder builder(store, bits_per_entry, IoContext::kCompaction);
  for (const auto& r : results) {
    for (const Entry& e : r.entries) {
      charger.Charge(sizeof(Entry));  // write side
      ENDURE_RETURN_IF_ERROR(builder.Add(e));
    }
  }
  if (builder.empty()) {
    return std::shared_ptr<Run>();  // everything consolidated away
  }
  return builder.Finish();
}

}  // namespace

StatusOr<std::shared_ptr<Run>> MergeRunsEx(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones, const MergeLimits& limits) {
  ENDURE_CHECK(store != nullptr);
  ENDURE_CHECK(!inputs.empty());
  if (limits.max_subtasks >= 2 && limits.min_pages_to_partition > 0) {
    size_t total_pages = 0;
    for (const auto& r : inputs) total_pages += r->num_pages();
    if (total_pages >= limits.min_pages_to_partition) {
      const std::vector<Key> bounds =
          PickPartitionBounds(inputs, limits.max_subtasks);
      if (!bounds.empty()) {
        return MergePartitioned(store, inputs, bits_per_entry,
                                drop_tombstones, limits, bounds);
      }
    }
  }
  return MergeSequential(store, inputs, bits_per_entry, drop_tombstones,
                         limits.limiter);
}

StatusOr<std::shared_ptr<Run>> MergeRuns(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones) {
  return MergeRunsEx(store, inputs, bits_per_entry, drop_tombstones,
                     MergeLimits{});
}

}  // namespace endure::lsm
