#include "lsm/compaction.h"

#include "lsm/merge_iterator.h"
#include "lsm/run_builder.h"

namespace endure::lsm {

StatusOr<std::shared_ptr<Run>> MergeRuns(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones) {
  ENDURE_CHECK(store != nullptr);
  ENDURE_CHECK(!inputs.empty());

  // Stack-owned adapters (reserve keeps the EntryStream pointers stable):
  // the merge consumes input pages one at a time while the builder streams
  // merged pages out, so working memory stays O(entries_per_page) per
  // input plus the output staging page — never the whole run.
  std::vector<StreamAdapter<Run::Iterator>> adapters;
  adapters.reserve(inputs.size());
  for (const auto& run : inputs) {
    adapters.emplace_back(run->NewIterator(IoContext::kCompaction));
  }
  std::vector<EntryStream*> heads;
  heads.reserve(adapters.size());
  for (auto& adapter : adapters) heads.push_back(&adapter);
  MergeIterator merge(std::move(heads));

  RunBuilder builder(store, bits_per_entry, IoContext::kCompaction);
  for (; merge.Valid(); merge.Next()) {
    const Entry& e = merge.entry();
    if (!(drop_tombstones && e.is_tombstone())) {
      ENDURE_RETURN_IF_ERROR(builder.Add(e));
    }
  }
  // An input iterator that hit an I/O error looks exhausted to the merge;
  // treating that as a clean drain would silently shrink the output, so
  // check every input before accepting the result.
  for (const auto& adapter : adapters) {
    ENDURE_RETURN_IF_ERROR(adapter.iter().status());
  }
  if (builder.empty()) {
    return std::shared_ptr<Run>();  // everything consolidated away
  }
  return builder.Finish();
}

}  // namespace endure::lsm
