#include "lsm/compaction.h"

#include "lsm/merge_iterator.h"
#include "lsm/run_builder.h"

namespace endure::lsm {

std::shared_ptr<Run> MergeRuns(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones) {
  ENDURE_CHECK(store != nullptr);
  ENDURE_CHECK(!inputs.empty());

  std::vector<std::unique_ptr<EntryStream>> streams;
  streams.reserve(inputs.size());
  for (const auto& run : inputs) {
    streams.push_back(std::make_unique<StreamAdapter<Run::Iterator>>(
        run->NewIterator(IoContext::kCompaction)));
  }
  MergeIterator merge(std::move(streams));

  RunBuilder builder(store, bits_per_entry, IoContext::kCompaction);
  while (merge.Valid()) {
    const Entry& e = merge.entry();
    if (!(drop_tombstones && e.is_tombstone())) builder.Add(e);
    merge.Next();
  }
  if (builder.empty()) return nullptr;
  return builder.Finish();
}

}  // namespace endure::lsm
