#include "lsm/memtable.h"

#include <algorithm>
#include <new>

namespace endure::lsm {

struct SkipList::Node {
  Entry entry;
  int height;
  std::atomic<Node*> next[1];  // over-allocated to `height` pointers

  static Node* Create(const Entry& e, int height) {
    const size_t bytes =
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
    Node* n = static_cast<Node*>(::operator new(bytes));
    n->entry = e;
    n->height = height;
    for (int i = 0; i < height; ++i) {
      new (&n->next[i]) std::atomic<Node*>(nullptr);
    }
    return n;
  }
  static void Destroy(Node* n) { ::operator delete(n); }

  Node* Next(int level) const {
    return next[level].load(std::memory_order_acquire);
  }
};

namespace {
/// True when node (k, s) orders strictly before position (key, seq_bound)
/// under (key asc, seq desc).
inline bool NodeBefore(Key k, SeqNum s, Key key, SeqNum seq_bound) {
  if (k != key) return k < key;
  return s > seq_bound;
}
}  // namespace

SkipList::SkipList() : rng_(0x5eed5eedULL) {
  Entry sentinel;
  sentinel.key = 0;
  head_ = Node::Create(sentinel, kMaxHeight);
}

SkipList::~SkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0].load(std::memory_order_relaxed);
    Node::Destroy(n);
    n = next;
  }
}

int SkipList::RandomHeight() {
  // Geometric with p = 1/2.
  int h = 1;
  while (h < kMaxHeight && (rng_.Next() & 1) != 0) ++h;
  return h;
}

SkipList::Node* SkipList::FindGreaterOrEqual(Key key, SeqNum seq_bound,
                                             Node** prev) const {
  Node* x = head_;
  for (int level = height_.load(std::memory_order_acquire) - 1; level >= 0;
       --level) {
    Node* next = x->Next(level);
    while (next != nullptr &&
           NodeBefore(next->entry.key, next->entry.seq, key, seq_bound)) {
      x = next;
      next = x->Next(level);
    }
    if (prev != nullptr) prev[level] = x;
  }
  return x->Next(0);
}

bool SkipList::Upsert(const Entry& e) {
  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_;
  // Ordered position of (key, seq): in front of all same-key versions with
  // a lower seq, behind any with a higher one.
  Node* found = FindGreaterOrEqual(e.key, e.seq, prev);
  const bool key_exists =
      (found != nullptr && found->entry.key == e.key) ||
      (prev[0] != head_ && prev[0]->entry.key == e.key);
  const int h = RandomHeight();
  if (h > height_.load(std::memory_order_relaxed)) {
    // Readers that observe the new height before the node links see the
    // still-null head pointers at the new levels, which is benign.
    height_.store(h, std::memory_order_release);
  }
  Node* n = Node::Create(e, h);
  for (int i = 0; i < h; ++i) {
    n->next[i].store(prev[i]->next[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    // The release store publishes the fully-built node to lock-free
    // readers.
    prev[i]->next[i].store(n, std::memory_order_release);
  }
  versions_.fetch_add(1, std::memory_order_relaxed);
  if (!key_exists) {
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

const Entry* SkipList::Find(Key key, SeqNum seq_bound) const {
  Node* n = FindGreaterOrEqual(key, seq_bound, nullptr);
  if (n != nullptr && n->entry.key == key) return &n->entry;
  return nullptr;
}

std::vector<Entry> SkipList::Dump() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (Iterator it(this); it.Valid(); it.Next()) out.push_back(it.entry());
  return out;
}

void SkipList::Clear() {
  Node* n = head_->next[0].load(std::memory_order_relaxed);
  while (n != nullptr) {
    Node* next = n->next[0].load(std::memory_order_relaxed);
    Node::Destroy(n);
    n = next;
  }
  for (int i = 0; i < kMaxHeight; ++i) {
    head_->next[i].store(nullptr, std::memory_order_relaxed);
  }
  height_.store(1, std::memory_order_relaxed);
  size_.store(0, std::memory_order_relaxed);
  versions_.store(0, std::memory_order_relaxed);
}

SkipList::Iterator::Iterator(const SkipList* list, SeqNum bound)
    : list_(list), node_(list->head_->Next(0)), bound_(bound) {
  SkipToVisible();
}

const Entry& SkipList::Iterator::entry() const {
  ENDURE_DCHECK(Valid());
  return static_cast<const Node*>(node_)->entry;
}

void SkipList::Iterator::SkipToVisible() {
  // node_ sits at the head of some key's version run (versions are
  // contiguous, newest first). Versions newer than the bound are skipped;
  // the first one at or below the bound is the visible version of its key.
  // Skipping past the last version of a key lands on the head of the next
  // key's run, preserving the precondition.
  const Node* n = static_cast<const Node*>(node_);
  while (n != nullptr && n->entry.seq > bound_) n = n->Next(0);
  node_ = n;
}

void SkipList::Iterator::Next() {
  ENDURE_DCHECK(Valid());
  // Skip the remaining (older, shadowed) versions of the current key, then
  // land on the newest visible version of the next key.
  const Node* n = static_cast<const Node*>(node_);
  const Key current = n->entry.key;
  do {
    n = n->Next(0);
  } while (n != nullptr && n->entry.key == current);
  node_ = n;
  SkipToVisible();
}

void SkipList::Iterator::Seek(Key target) {
  // Position at the first version of the first key >= target: with
  // seq_bound = kMaxSeq no same-key version orders before the target, so
  // this lands on the newest stored version.
  node_ = list_->FindGreaterOrEqual(target, kMaxSeq, nullptr);
  SkipToVisible();
}

void SkipList::Iterator::SeekToFirst() {
  node_ = list_->head_->Next(0);
  SkipToVisible();
}

MemTable::MemTable(uint64_t capacity) : capacity_(std::max<uint64_t>(1,
                                                                     capacity)) {}

}  // namespace endure::lsm
