#include "lsm/memtable.h"

#include <algorithm>

namespace endure::lsm {

struct SkipList::Node {
  Entry entry;
  int height;
  Node* next[1];  // over-allocated to `height` pointers

  static Node* Create(const Entry& e, int height) {
    const size_t bytes = sizeof(Node) + sizeof(Node*) * (height - 1);
    Node* n = static_cast<Node*>(::operator new(bytes));
    n->entry = e;
    n->height = height;
    for (int i = 0; i < height; ++i) n->next[i] = nullptr;
    return n;
  }
  static void Destroy(Node* n) { ::operator delete(n); }
};

SkipList::SkipList() : rng_(0x5eed5eedULL) {
  Entry sentinel;
  sentinel.key = 0;
  head_ = Node::Create(sentinel, kMaxHeight);
}

SkipList::~SkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    Node::Destroy(n);
    n = next;
  }
}

int SkipList::RandomHeight() {
  // Geometric with p = 1/2.
  int h = 1;
  while (h < kMaxHeight && (rng_.Next() & 1) != 0) ++h;
  return h;
}

SkipList::Node* SkipList::FindGreaterOrEqual(Key key, Node** prev) const {
  Node* x = head_;
  for (int level = height_ - 1; level >= 0; --level) {
    while (x->next[level] != nullptr && x->next[level]->entry.key < key) {
      x = x->next[level];
    }
    if (prev != nullptr) prev[level] = x;
  }
  return x->next[0];
}

bool SkipList::Upsert(const Entry& e) {
  Node* prev[kMaxHeight];
  for (int i = 0; i < kMaxHeight; ++i) prev[i] = head_;
  Node* found = FindGreaterOrEqual(e.key, prev);
  if (found != nullptr && found->entry.key == e.key) {
    found->entry = e;  // Level 0 is updated in place
    return false;
  }
  const int h = RandomHeight();
  if (h > height_) height_ = h;
  Node* n = Node::Create(e, h);
  for (int i = 0; i < h; ++i) {
    n->next[i] = prev[i]->next[i];
    prev[i]->next[i] = n;
  }
  ++size_;
  return true;
}

const Entry* SkipList::Find(Key key) const {
  Node* n = FindGreaterOrEqual(key, nullptr);
  if (n != nullptr && n->entry.key == key) return &n->entry;
  return nullptr;
}

std::vector<Entry> SkipList::Dump() const {
  std::vector<Entry> out;
  out.reserve(size_);
  for (Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    out.push_back(n->entry);
  }
  return out;
}

void SkipList::Clear() {
  Node* n = head_->next[0];
  while (n != nullptr) {
    Node* next = n->next[0];
    Node::Destroy(n);
    n = next;
  }
  for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
  height_ = 1;
  size_ = 0;
}

SkipList::Iterator::Iterator(const SkipList* list)
    : list_(list), node_(list->head_->next[0]) {}

const Entry& SkipList::Iterator::entry() const {
  ENDURE_DCHECK(Valid());
  return static_cast<const Node*>(node_)->entry;
}

void SkipList::Iterator::Next() {
  ENDURE_DCHECK(Valid());
  node_ = static_cast<const Node*>(node_)->next[0];
}

void SkipList::Iterator::Seek(Key target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

void SkipList::Iterator::SeekToFirst() { node_ = list_->head_->next[0]; }

MemTable::MemTable(uint64_t capacity) : capacity_(std::max<uint64_t>(1,
                                                                     capacity)) {}

}  // namespace endure::lsm
