// Copyright (c) endure-cpp authors. Licensed under the MIT license.

#include "lsm/compaction_scheduler.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace endure::lsm {

CompactionScheduler::CompactionScheduler(ThreadPool* pool,
                                         const Config& config,
                                         Statistics* stats)
    : pool_(pool),
      max_parallel_(std::max<size_t>(1, config.max_parallel)),
      stats_(stats),
      limiter_(config.rate_bytes_per_sec) {
  timer_ = std::thread([this] { TimerLoop(); });
}

CompactionScheduler::~CompactionScheduler() { Stop(); }

bool CompactionScheduler::Enqueue(int priority, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_.load(std::memory_order_relaxed)) return false;
  ready_.push_back(Job{priority, next_seq_++, std::move(fn)});
  std::push_heap(ready_.begin(), ready_.end(), ReadyAfter);
  ++active_;
  if (stats_ != nullptr) {
    ++stats_->sched_jobs;
    // Gauge: only this thread (under mu_) ever raises it, so the
    // read-compare-store is race-free despite the relaxed counter.
    if (ready_.size() > stats_->sched_queue_peak.load()) {
      stats_->sched_queue_peak = ready_.size();
    }
  }
  DispatchLocked();
  return true;
}

bool CompactionScheduler::EnqueueDelayed(int priority, uint64_t delay_ms,
                                         std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_.load(std::memory_order_relaxed)) return false;
  DelayedJob d;
  d.deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(delay_ms);
  d.job = Job{priority, next_seq_++, std::move(fn)};
  delayed_.push_back(std::move(d));
  std::push_heap(delayed_.begin(), delayed_.end(), DelayedAfter);
  ++active_;
  if (stats_ != nullptr) ++stats_->sched_requeues;
  timer_cv_.notify_one();
  return true;
}

void CompactionScheduler::DispatchLocked() {
  while (!stopped_.load(std::memory_order_relaxed) &&
         in_pool_ < max_parallel_ && !ready_.empty()) {
    std::pop_heap(ready_.begin(), ready_.end(), ReadyAfter);
    Job job = std::move(ready_.back());
    ready_.pop_back();
    ++in_pool_;
    // shared_ptr because std::function requires copyable callables.
    auto fn = std::make_shared<std::function<void()>>(std::move(job.fn));
    if (!pool_->TrySubmit([this, fn] {
          (*fn)();
          OnJobFinished();
        })) {
      // Pool shutting down: the owner is tearing us down too, drop it.
      --in_pool_;
      --active_;
      idle_cv_.notify_all();
      return;
    }
  }
}

void CompactionScheduler::OnJobFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_pool_;
  --active_;
  DispatchLocked();
  if (active_ == 0) idle_cv_.notify_all();
}

void CompactionScheduler::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopped_.load(std::memory_order_relaxed)) {
    if (delayed_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (delayed_.front().deadline > now) {
      timer_cv_.wait_until(lock, delayed_.front().deadline);
      continue;
    }
    while (!delayed_.empty() && delayed_.front().deadline <= now) {
      std::pop_heap(delayed_.begin(), delayed_.end(), DelayedAfter);
      Job job = std::move(delayed_.back().job);
      delayed_.pop_back();
      ready_.push_back(std::move(job));
      std::push_heap(ready_.begin(), ready_.end(), ReadyAfter);
      if (stats_ != nullptr &&
          ready_.size() > stats_->sched_queue_peak.load()) {
        stats_->sched_queue_peak = ready_.size();
      }
    }
    DispatchLocked();
  }
}

void CompactionScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
}

void CompactionScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
    active_ -= ready_.size() + delayed_.size();
    ready_.clear();
    delayed_.clear();
    timer_cv_.notify_all();
    if (active_ == 0) idle_cv_.notify_all();
  }
  limiter_.Stop();
  if (timer_.joinable()) timer_.join();
}

}  // namespace endure::lsm
