#include "lsm/db.h"

namespace endure::lsm {

DB::DB(const Options& options) : options_(options) {
  store_ = MakePageStore(options_.entries_per_page, &stats_,
                         static_cast<int>(options_.backend),
                         options_.storage_dir);
  tree_ = std::make_unique<LsmTree>(options_, store_.get(), &stats_);
}

StatusOr<std::unique_ptr<DB>> DB::Open(const Options& options) {
  ENDURE_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<DB>(new DB(options));
}

Status DB::BulkLoad(const std::vector<std::pair<Key, Value>>& sorted_pairs) {
  if (tree_->TotalEntries() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty database");
  }
  std::vector<Entry> entries;
  entries.reserve(sorted_pairs.size());
  for (const auto& [key, value] : sorted_pairs) {
    if (!entries.empty() && entries.back().key >= key) {
      return Status::InvalidArgument(
          "BulkLoad input must be strictly ascending by key");
    }
    entries.push_back(Entry{key, /*seq=*/0, value, EntryType::kValue});
  }
  tree_->BulkLoad(entries);
  return Status::OK();
}

Status DB::ApplyTuning(const Options& new_options) {
  ENDURE_RETURN_IF_ERROR(tree_->Reconfigure(new_options));
  while (tree_->AdvanceMigration()) {
  }
  options_ = new_options;
  return Status::OK();
}

}  // namespace endure::lsm
