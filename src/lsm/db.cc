#include "lsm/db.h"

#include "lsm/manifest.h"
#include "util/env.h"

namespace endure::lsm {

DB::DB(const Options& options) : options_(options) {
  if (options_.durability &&
      options_.wal_sync_mode == WalSyncMode::kBackground &&
      options_.shared_wal_flusher) {
    flush_service_ =
        std::make_unique<WalFlushService>(options_.wal_sync_interval_ms);
  }
  if (options_.block_cache_bytes > 0) {
    cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  }
  store_ = MakePageStore(options_.entries_per_page, &stats_,
                         static_cast<int>(options_.backend),
                         options_.storage_dir,
                         /*persistent=*/options_.durability,
                         options_.verify_checksums,
                         options_.scrub_on_recovery);
  if (cache_ != nullptr) store_->set_block_cache(cache_.get());
  tree_ = std::make_unique<LsmTree>(options_, store_.get(), &stats_);
}

StatusOr<std::unique_ptr<DB>> DB::Open(const Options& options) {
  ENDURE_RETURN_IF_ERROR(options.Validate());
  if (!options.durability) return std::unique_ptr<DB>(new DB(options));

  // Durable open: recover an existing deployment or start a fresh one.
  // The persisted tuning overrides the caller's mutable knobs — an
  // ApplyTuning outlives the process that applied it.
  Options opts = options;
  ENDURE_RETURN_IF_ERROR(EnsureDir(opts.storage_dir));
  auto lock_or =
      FileLock::Acquire(opts.storage_dir + "/" + kLockFileName);
  if (!lock_or.ok()) return lock_or.status();
  ManifestData m;
  auto existing_or = LoadDurableState(opts.storage_dir, &opts, &m);
  if (!existing_or.ok()) return existing_or.status();
  const bool existing = *existing_or;
  if (existing && m.kind != kManifestKindTree) {
    return Status::InvalidArgument(
        "storage_dir holds a ShardedDB deployment; open it with "
        "ShardedDB::Open");
  }
  auto db = std::unique_ptr<DB>(new DB(opts));
  db->lock_ = std::move(lock_or).value();
  ENDURE_RETURN_IF_ERROR(
      RecoverAndAttach(db->tree_.get(), m, existing, opts.storage_dir,
                       db->flush_service_.get()));
  return db;
}

Status DB::BulkLoad(const std::vector<std::pair<Key, Value>>& sorted_pairs) {
  if (tree_->TotalEntries() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty database");
  }
  std::vector<Entry> entries;
  entries.reserve(sorted_pairs.size());
  for (const auto& [key, value] : sorted_pairs) {
    if (!entries.empty() && entries.back().key >= key) {
      return Status::InvalidArgument(
          "BulkLoad input must be strictly ascending by key");
    }
    entries.push_back(Entry{key, /*seq=*/0, value, EntryType::kValue});
  }
  return tree_->BulkLoad(entries);
}

Status DB::ApplyTuning(const Options& new_options) {
  if (new_options.block_cache_bytes > 0 && cache_ == nullptr) {
    return Status::InvalidArgument(
        "block_cache_bytes cannot be enabled after open; reopen with a "
        "non-zero cache to enable it");
  }
  ENDURE_RETURN_IF_ERROR(tree_->Reconfigure(new_options));
  if (cache_ != nullptr) {
    cache_->set_capacity(new_options.block_cache_bytes);
  }
  bool did_work = true;
  while (did_work) {
    // A migration-step failure is recoverable: the tree keeps the level
    // intact, so a later ApplyTuning retry (or reopen) resumes from here.
    ENDURE_RETURN_IF_ERROR(tree_->AdvanceMigration(&did_work));
  }
  options_ = new_options;
  return Status::OK();
}

}  // namespace endure::lsm
