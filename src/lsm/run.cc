#include "lsm/run.h"

#include <algorithm>

namespace endure::lsm {
namespace {

/// Branchless lower bound over one page of entries, structured so cache
/// misses overlap: small pages are pulled whole up front, large pages
/// prefetch both candidate probes of the next search level while the
/// current one is in flight (a cold 4KB page would otherwise serialize
/// log2(B) DRAM misses).
const Entry* PageLowerBound(const Entry* base, size_t n, Key key) {
  if (n * sizeof(Entry) <= 512) {
    const char* raw = reinterpret_cast<const char*>(base);
    for (size_t off = 0; off < n * sizeof(Entry); off += 64) {
      __builtin_prefetch(raw + off);
    }
    while (n > 1) {
      const size_t half = n / 2;
      base += base[half - 1].key < key ? half : 0;
      n -= half;
    }
    return base;
  }
  // The probe positions of the first three search levels are known up
  // front — pull all seven so their misses overlap in one memory round
  // trip instead of serializing.
  {
    const size_t h1 = n / 2;
    const size_t h2 = (n - h1) / 2;
    const size_t h3 = (n - h1 - h2) / 2;
    __builtin_prefetch(base + h1 - 1);
    if (h2 >= 1) {
      __builtin_prefetch(base + h2 - 1);
      __builtin_prefetch(base + h1 + h2 - 1);
    }
    if (h3 >= 1) {
      __builtin_prefetch(base + h3 - 1);
      __builtin_prefetch(base + h2 + h3 - 1);
      __builtin_prefetch(base + h1 + h3 - 1);
      __builtin_prefetch(base + h1 + h2 + h3 - 1);
    }
  }
  while (n > 1) {
    const size_t half = n / 2;
    const size_t next = (n - half) / 2;
    if (next > 2) {  // smaller strides fall on lines already in flight
      __builtin_prefetch(base + next - 1);
      __builtin_prefetch(base + half + next - 1);
    }
    base += base[half - 1].key < key ? half : 0;
    n -= half;
  }
  return base;
}

/// Per-thread point-lookup scratch. Runs are shared by lock-free snapshot
/// readers, so the buffer must be per reader thread, not per run; it grows
/// to the largest entries_per_page seen on this thread and is then reused
/// allocation-free.
PageBuffer& PointScratch() {
  static thread_local PageBuffer scratch;
  return scratch;
}

}  // namespace

Run::Run(PageStore* store, SegmentId segment,
         std::unique_ptr<BloomFilter> bloom,
         std::unique_ptr<FencePointers> fences, uint64_t num_entries,
         double bloom_bits_per_entry)
    : store_(store),
      segment_(segment),
      bloom_(std::move(bloom)),
      fences_(std::move(fences)),
      num_entries_(num_entries),
      bloom_bits_per_entry_(bloom_bits_per_entry) {
  ENDURE_CHECK(store_ != nullptr);
  ENDURE_CHECK(bloom_ != nullptr && fences_ != nullptr);
  ENDURE_CHECK(num_entries_ > 0);
}

Run::~Run() { store_->FreeSegment(segment_); }

const Entry* Run::Get(Key key, bool use_fence_skip,
                      Status* io_status) const {
  // Start pulling the filter block's cache line immediately — its address
  // depends only on the key, and the fetch overlaps the fence range check
  // and counter updates below.
  bloom_->Prefetch(key);
  Statistics* stats = store_->stats();
  if (use_fence_skip && (key < min_key() || key > max_key())) {
    ++stats->fence_skips;
    return nullptr;
  }
  ++stats->bloom_probes;
  if (!bloom_->MayContain(key)) {
    ++stats->bloom_negatives;
    return nullptr;
  }
  const std::optional<size_t> page = fences_->PageFor(key);
  if (!page.has_value()) {
    // Inside the filter but outside the fences (possible when fence skip is
    // disabled): a false positive that fence pointers resolve without I/O.
    ++stats->bloom_false_positives;
    return nullptr;
  }
  const StatusOr<PageView> view =
      store_->ReadPageView(segment_, *page, IoContext::kPointQuery,
                           &PointScratch());
  if (!view.ok()) {
    if (io_status != nullptr) *io_status = view.status();
    return nullptr;
  }
  const Entry* it = PageLowerBound(view->data, view->size, key);
  if (it->key == key) return it;
  ++stats->bloom_false_positives;
  return nullptr;
}

Run::Iterator::Iterator(const Run* run, size_t start_page, size_t end_page,
                        IoContext ctx)
    : run_(run),
      end_page_(end_page),
      current_page_(start_page),
      ctx_(ctx) {
  ENDURE_DCHECK(end_page < run->num_pages());
  ENDURE_DCHECK(start_page <= end_page);
  LoadPage(current_page_);
}

void Run::Iterator::LoadPage(size_t page) {
  StatusOr<PageView> view =
      run_->store_->ReadPageView(run_->segment_, page, ctx_, &buffer_);
  if (!view.ok()) {
    // The iterator dies in place: it looks exhausted, and the error is
    // held in status() for the consumer's post-drain check.
    if (status_.ok()) status_ = view.status();
    view_ = PageView{};
    exhausted_ = true;
    return;
  }
  view_ = *view;
  index_in_page_ = 0;
}

bool Run::Iterator::Valid() const { return !exhausted_; }

const Entry& Run::Iterator::entry() const {
  ENDURE_DCHECK(Valid());
  return view_[index_in_page_];
}

void Run::Iterator::Next() {
  ENDURE_DCHECK(Valid());
  if (++index_in_page_ < view_.size) return;
  if (current_page_ == end_page_) {
    exhausted_ = true;
    return;
  }
  LoadPage(++current_page_);
}

Run::Iterator Run::NewIterator(IoContext ctx) const {
  return Iterator(this, 0, num_pages() - 1, ctx);
}

void Run::BlindSeek() const {
  ++store_->stats()->range_seeks;
  // The read exists only to charge the cost model's one-seek-per-run; a
  // failure changes no visible state, so it is deliberately dropped.
  (void)store_->ReadPageView(segment_, 0, IoContext::kRangeQuery,
                             &PointScratch());
}

std::optional<Run::Iterator> Run::NewRangeIterator(Key lo, Key hi) const {
  const auto pages = fences_->PageRange(lo, hi);
  if (!pages.has_value()) return std::nullopt;
  ++store_->stats()->range_seeks;
  return Iterator(this, pages->first, pages->second, IoContext::kRangeQuery);
}

}  // namespace endure::lsm
