#include "lsm/run.h"

#include <algorithm>

namespace endure::lsm {

Run::Run(PageStore* store, SegmentId segment,
         std::unique_ptr<BloomFilter> bloom,
         std::unique_ptr<FencePointers> fences, uint64_t num_entries)
    : store_(store),
      segment_(segment),
      bloom_(std::move(bloom)),
      fences_(std::move(fences)),
      num_entries_(num_entries) {
  ENDURE_CHECK(store_ != nullptr);
  ENDURE_CHECK(bloom_ != nullptr && fences_ != nullptr);
  ENDURE_CHECK(num_entries_ > 0);
}

Run::~Run() { store_->FreeSegment(segment_); }

std::optional<Entry> Run::Get(Key key, bool use_fence_skip) const {
  Statistics* stats = store_->stats();
  if (use_fence_skip && (key < min_key() || key > max_key())) {
    ++stats->fence_skips;
    return std::nullopt;
  }
  ++stats->bloom_probes;
  if (!bloom_->MayContain(key)) {
    ++stats->bloom_negatives;
    return std::nullopt;
  }
  const std::optional<size_t> page = fences_->PageFor(key);
  if (!page.has_value()) {
    // Inside the filter but outside the fences (possible when fence skip is
    // disabled): a false positive that fence pointers resolve without I/O.
    ++stats->bloom_false_positives;
    return std::nullopt;
  }
  std::vector<Entry> entries;
  store_->ReadPage(segment_, *page, IoContext::kPointQuery, &entries);
  // Binary search within the page.
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it != entries.end() && it->key == key) return *it;
  ++stats->bloom_false_positives;
  return std::nullopt;
}

Run::Iterator::Iterator(const Run* run, size_t start_page, size_t end_page,
                        IoContext ctx)
    : run_(run), end_page_(end_page), current_page_(start_page), ctx_(ctx) {
  ENDURE_DCHECK(end_page < run->num_pages());
  ENDURE_DCHECK(start_page <= end_page);
  LoadPage(current_page_);
}

void Run::Iterator::LoadPage(size_t page) {
  run_->store_->ReadPage(run_->segment_, page, ctx_, &buffer_);
  index_in_page_ = 0;
}

bool Run::Iterator::Valid() const { return !exhausted_; }

const Entry& Run::Iterator::entry() const {
  ENDURE_DCHECK(Valid());
  return buffer_[index_in_page_];
}

void Run::Iterator::Next() {
  ENDURE_DCHECK(Valid());
  if (++index_in_page_ < buffer_.size()) return;
  if (current_page_ == end_page_) {
    exhausted_ = true;
    return;
  }
  LoadPage(++current_page_);
}

Run::Iterator Run::NewIterator(IoContext ctx) const {
  return Iterator(this, 0, num_pages() - 1, ctx);
}

void Run::BlindSeek() const {
  ++store_->stats()->range_seeks;
  std::vector<Entry> discard;
  store_->ReadPage(segment_, 0, IoContext::kRangeQuery, &discard);
}

std::optional<Run::Iterator> Run::NewRangeIterator(Key lo, Key hi) const {
  const auto pages = fences_->PageRange(lo, hi);
  if (!pages.has_value()) return std::nullopt;
  ++store_->stats()->range_seeks;
  return Iterator(this, pages->first, pages->second, IoContext::kRangeQuery);
}

}  // namespace endure::lsm
