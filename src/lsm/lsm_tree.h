// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The LSM tree proper: memtable + exponentially-capacitated levels of
// sorted runs, with classic leveling or tiering compaction, per-level
// Monkey Bloom filters and full I/O accounting. This is the engine the
// system experiments (Section 8) run against, standing in for the paper's
// hook-instrumented RocksDB.

#ifndef ENDURE_LSM_LSM_TREE_H_
#define ENDURE_LSM_LSM_TREE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "lsm/compaction.h"
#include "lsm/manifest.h"
#include "lsm/memtable.h"
#include "lsm/monkey_allocator.h"
#include "lsm/options.h"
#include "lsm/page_store.h"
#include "lsm/run.h"
#include "util/wal.h"

namespace endure::lsm {

/// Per-level summary for diagnostics and tests.
struct LevelInfo {
  int level = 0;           ///< 1-based level number
  size_t num_runs = 0;     ///< runs currently resident
  uint64_t num_entries = 0;///< total entries across the level's runs
  uint64_t capacity = 0;   ///< entry capacity (T-1) * T^(i-1) * buffer
  Key min_key = 0;         ///< smallest key on the level (0 when empty)
  Key max_key = 0;         ///< largest key on the level (0 when empty)
  size_t current_epoch_runs = 0;  ///< runs built under the current tuning
  double filter_bits_per_entry = 0;  ///< mean Bloom bits/entry across runs
};

/// How far a live reconfiguration has propagated through the tree. Runs
/// are stamped with the tuning epoch they were built under; a Reconfigure
/// bumps the epoch, so entries in current-epoch runs carry the new Bloom
/// budget while older runs keep their filters until a compaction rewrites
/// them. Structure (run counts and level capacities under the new policy
/// and size ratio) converges separately, one AdvanceMigration step at a
/// time.
struct MigrationProgress {
  uint64_t epoch = 0;             ///< current tuning epoch
  uint64_t runs_total = 0;        ///< resident runs
  uint64_t runs_current = 0;      ///< runs built under the current epoch
  uint64_t entries_total = 0;     ///< entries resident in runs
  uint64_t entries_current = 0;   ///< entries in current-epoch runs
  int nonconforming_levels = 0;   ///< levels still violating target shape

  /// True when every level satisfies the current policy/size-ratio shape
  /// (old-epoch filters may still be live; they migrate lazily).
  bool structure_conforming() const { return nonconforming_levels == 0; }

  /// Fraction of resident entries already under the current epoch.
  double entries_current_fraction() const {
    return entries_total == 0
               ? 1.0
               : static_cast<double>(entries_current) /
                     static_cast<double>(entries_total);
  }

  /// Folds another shard's progress into this one (epoch = max).
  void Accumulate(const MigrationProgress& other);
};

/// An immutable point-in-time view of the tree's read sources, published
/// by the writer via one atomic shared_ptr swap and acquired by readers
/// with one atomic load — the lock-free read path's whole handshake.
/// Everything a Get/Scan touches is snapshotted here: the memtables are
/// multi-versioned and insert-only (so a reader bounded at the sequence
/// number it observed keeps a frozen view even while the writer keeps
/// inserting), and runs are immutable by construction. Reclamation is the
/// shared_ptr refcount: the last reader of a superseded snapshot drops
/// the old memtables/runs, no epochs or hazard pointers needed.
///
/// Consistency invariant: every sequence number stored in `sealed` or in
/// `levels` at publication time is <= the tree's visible sequence at
/// publication. A reader that loads the snapshot FIRST and the visible
/// sequence SECOND (both acquire) therefore holds a bound V covering all
/// run/sealed entries, and filtering the memtables at V yields exactly
/// the writes applied up to V — a prefix of the write sequence.
struct ReadSnapshot {
  std::shared_ptr<const MemTable> active;  ///< the (still filling) buffer
  std::shared_ptr<const MemTable> sealed;  ///< full buffer, or null
  /// levels[i] holds level i+1; runs newest first. Deep-copied vectors,
  /// shared runs.
  std::vector<std::vector<std::shared_ptr<Run>>> levels;
  uint64_t epoch = 0;             ///< tuning epoch at publication
  bool fence_pointer_skip = true; ///< Options::fence_pointer_skip frozen
};

#if defined(__SANITIZE_THREAD__)
#define ENDURE_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ENDURE_TSAN_BUILD 1
#endif
#endif

/// Holder for the published ReadSnapshot pointer. Production builds use
/// std::atomic<std::shared_ptr> — one lock-free atomic load per read.
/// The ThreadSanitizer build substitutes a mutex: libstdc++'s _Sp_atomic
/// guards its plain pointer with an embedded lock *bit* whose reader
/// side unlocks with relaxed ordering (shared_ptr_atomic.h, load()), a
/// real-time exclusion TSan's happens-before analysis cannot see, so
/// every reader would be reported racing the publisher. The mutex keeps
/// the surrounding protocol (and everything the snapshot guards) fully
/// race-checked while silencing that one false positive.
class AtomicSnapshotPtr {
 public:
  std::shared_ptr<const ReadSnapshot> load(std::memory_order order) const {
#ifdef ENDURE_TSAN_BUILD
    (void)order;
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
#else
    return ptr_.load(order);
#endif
  }

  void store(std::shared_ptr<const ReadSnapshot> snap,
             std::memory_order order) {
#ifdef ENDURE_TSAN_BUILD
    (void)order;
    std::lock_guard<std::mutex> lock(mu_);
    ptr_ = std::move(snap);
#else
    ptr_.store(std::move(snap), order);
#endif
  }

 private:
#ifdef ENDURE_TSAN_BUILD
  mutable std::mutex mu_;
  std::shared_ptr<const ReadSnapshot> ptr_;
#else
  std::atomic<std::shared_ptr<const ReadSnapshot>> ptr_;
#endif
};

/// One unit of background maintenance, produced by PrepareMaintenance()
/// under the owner's lock, executed (all I/O) by ExecuteMaintenance()
/// with NO lock held, and made visible by InstallMaintenance() back under
/// the lock. The unit snapshots everything the off-lock phase needs —
/// input runs (shared_ptr keeps their segments alive), the sealed buffer,
/// the Bloom budget and tombstone rule frozen at prepare time — so
/// Execute never touches the tree. Install validates that the tree still
/// matches the snapshot (same tuning epoch, inputs still resident, the
/// buffer still sealed) and discards the output as a clean no-op when a
/// foreground operation raced ahead.
struct MaintenanceUnit {
  enum class Kind { kNone, kFlush, kCompaction };

  Kind kind = Kind::kNone;
  /// Scheduler class: 0 = flush, 1 = migration step, 2 = major compaction.
  int priority = 2;
  int level = 0;       ///< compaction source level (1-based)
  uint64_t epoch = 0;  ///< tuning epoch at prepare (install revalidates)

  std::shared_ptr<MemTable> buffer;  ///< flush: the sealed buffer
  std::vector<std::shared_ptr<Run>> inputs;  ///< compaction: level snapshot
  /// Single over-capacity run: push it down without rewriting (it keeps
  /// its build epoch) — the migration-step fast path.
  bool single_run_push = false;
  double bits_per_entry = 0;  ///< Monkey budget frozen at prepare
  bool drop_tombstones = false;

  std::shared_ptr<Run> output;  ///< produced by Execute, placed by Install
};

/// The storage engine core. Writes and structural maintenance are
/// serialized externally (the experiment harness runs one thread, as in
/// the paper; ShardedDB guards each shard's tree with the shard mutex),
/// but Get() and Scan() are lock-free: they acquire the current
/// ReadSnapshot with a single atomic load and never touch the shard
/// mutex, so any number of reader threads proceed concurrently with the
/// writer and with maintenance installs. Background maintenance follows the
/// prepare/execute/install protocol (MaintenanceUnit): only the snapshot
/// and the run-list swap happen under the owner's lock, the merge I/O in
/// between runs unlocked. With `Options::background_maintenance` the tree
/// never flushes inline — filling the write buffer seals it into an
/// immutable slot that stays readable (and is consulted by Get/Scan
/// between the active buffer and the runs) until a flush unit (or
/// FlushSealedMemtable()) pushes it into level 1; see
/// docs/architecture.md ("Concurrency model").
class LsmTree {
 public:
  /// `store` and `stats` must outlive the tree.
  LsmTree(const Options& options, PageStore* store, Statistics* stats);
  ENDURE_DISALLOW_COPY_AND_ASSIGN(LsmTree);

  /// Inserts or updates a key. Non-OK means the write was NOT
  /// acknowledged (it may or may not have reached the memtable — exactly
  /// the guarantee a crash gives); an I/O failure on the inline
  /// flush/WAL path also latches the tree read-only (see Health()).
  Status Put(Key key, Value value);

  /// Inserts or updates several keys with one WAL group commit: all
  /// records are staged and hit the log in a single write (and, under
  /// WalSyncMode::kPerBatch, a single fsync) — the amortization
  /// bench/micro_wal measures. Without durability it is plain Puts.
  /// Non-OK means the batch was not acknowledged (a prefix may have been
  /// applied).
  Status PutBatch(const std::vector<std::pair<Key, Value>>& pairs);

  /// Deletes a key (tombstone write). Error contract as Put.
  Status Delete(Key key);

  /// Point lookup: memtable, then levels shallow-to-deep, runs
  /// newest-to-oldest; first match wins. Lock-free: acquires the current
  /// ReadSnapshot (one atomic load, counted in snapshot_acquires) and
  /// bounds memtable reads at the visible sequence it observed — safe to
  /// call from any thread concurrently with writes and maintenance.
  std::optional<Value> Get(Key key);

  /// Range query over [lo, hi): merges all qualifying sources, returns
  /// live entries in key order. Lock-free, same snapshot protocol as
  /// Get(); the result is a point-in-time view (an exact prefix of the
  /// applied write sequence). A page that cannot be read (I/O error,
  /// checksum mismatch) fails the whole scan — a silently truncated
  /// result would be indistinguishable from deleted keys — and latches
  /// the tree (see Health()).
  StatusOr<std::vector<Entry>> Scan(Key lo, Key hi);

  /// Flushes the sealed buffer (if any) and then the active memtable, in
  /// age order. Also triggered automatically when the buffer fills and
  /// background maintenance is off. On failure the buffers keep their
  /// entries (nothing is lost) and the call may simply be retried; the
  /// tree is NOT latched, so maintenance owners decide the retry policy.
  Status Flush();

  /// True when a sealed (full, immutable, not yet flushed) buffer is
  /// pending maintenance.
  bool HasSealedMemtable() const { return sealed_ != nullptr; }

  /// Flushes the sealed buffer into level 1 (no-op when none is pending).
  /// Inline fallback when no scheduler is attached; runs fully under the
  /// caller's lock. Error contract as Flush(): entries stay in the
  /// restored buffer, retryable.
  Status FlushSealedMemtable();

  // --- background maintenance protocol (prepare / execute / install) ---
  // The owner (ShardedDB's compaction scheduler) drives one unit at a
  // time per tree:
  //   lock     -> unit = tree->PrepareMaintenance();       // snapshot
  //   unlock   -> s = tree->ExecuteMaintenance(&unit, limits);  // all I/O
  //   lock     -> if (s.ok()) s = tree->InstallMaintenance(&unit); // swap
  // Execute touches only the unit's snapshot, the page store (internally
  // synchronized) and statistics — never opts_ or the level lists — so
  // foreground reads and writes proceed under the lock meanwhile. Install
  // discards the output (returning OK) when the tree moved on: a
  // Reconfigure bumped the epoch, a foreground Flush consumed the sealed
  // buffer, or the input runs are no longer resident. One unit makes one
  // bounded step; HasMaintenanceWork() stays true until the cascade it
  // begins has fully settled, so the owner just keeps scheduling.

  /// Snapshots the most urgent pending unit: the sealed buffer (flush),
  /// else the shallowest non-conforming level (compaction). Returns a
  /// Kind::kNone unit when nothing is pending or the tree is latched;
  /// as a side effect, a pending-migration flag with nothing left to do
  /// is cleared here (with a best-effort manifest publish).
  MaintenanceUnit PrepareMaintenance();

  /// Runs the unit's I/O (builds the flush run / merges the input runs)
  /// under `limits`. Call WITHOUT the owner's lock. On failure the unit
  /// holds no output and nothing is resident — retry by re-preparing.
  Status ExecuteMaintenance(MaintenanceUnit* unit,
                            const MergeLimits& limits);

  /// Publishes the unit's output into the level lists (under the owner's
  /// lock) after revalidating the snapshot; stale units are discarded and
  /// return OK. Flush installs checkpoint (WAL shrink); compaction
  /// installs publish the manifest. An error is retryable: on a flush the
  /// entries remain WAL-covered, on a compaction the in-memory tree is
  /// already consistent and merely ahead of the old manifest.
  Status InstallMaintenance(MaintenanceUnit* unit);

  /// True when a unit is pending: a sealed buffer, a non-conforming
  /// level, or an unresolved migration flag (false when latched).
  bool HasMaintenanceWork() const;

  /// Priority of the next unit PrepareMaintenance would produce (0 =
  /// flush, 1 = migration step, 2 = major compaction).
  int MaintenancePriority() const;

  /// Runs resident in `level` (1-based; 0 for levels beyond the tree) —
  /// the write-path backpressure signal.
  size_t RunsInLevel(int level) const;

  /// When true, MaintainAfterWrite never flushes inline while a sealed
  /// buffer is pending: the active buffer keeps absorbing writes over
  /// capacity and the owner applies backpressure upstream (stalling
  /// writers until the scheduler drains the debt). PutBatch may overshoot
  /// the buffer by one batch. Off (inline fallback) by default.
  void set_deferred_backpressure(bool v) { deferred_backpressure_ = v; }

  /// First unrecovered background/write-path failure, or OK. Once
  /// non-OK the tree is in read-only degraded mode: writes and
  /// maintenance are rejected with this status, reads keep serving.
  /// Latched by foreground write-path failures, by read-path
  /// I/O/corruption errors, and by owners giving up on background
  /// retries (LatchBackgroundError); cleared only by reopening.
  /// Thread-safe (lock-free readers latch too): the healthy fast path is
  /// one relaxed-ish atomic load, the latched path takes a small mutex.
  Status Health() const;

  /// Latches `error` (first error wins; OK is ignored) and counts the
  /// read-only transition. ShardedDB calls this when a background job
  /// exhausts its retry budget; the tree's own write path calls it on
  /// foreground I/O failures, and lock-free readers call it on read-path
  /// I/O/corruption errors. Thread-safe.
  void LatchBackgroundError(const Status& error);

  /// Memory-arbiter hook: retargets the active buffer's seal threshold
  /// (in entries, clamped to >= 1) without a tuning-epoch bump or a
  /// manifest write. The override sticks across seals/flushes until the
  /// next Reconfigure, which resets the threshold to its own
  /// buffer_entries. Call under the owner's lock (it is a write-side
  /// mutation).
  void SetBufferCapacity(uint64_t entries);

  /// Transitions the live tree to `new_options` without rebuilding it:
  /// - Bloom bits-per-entry and filter allocation take effect on runs
  ///   built from now on (flushes, compactions); resident runs keep their
  ///   filters until a compaction rewrites them (tracked by tuning epoch).
  /// - A buffer_entries change retargets the active memtable's seal
  ///   threshold immediately; an over-full buffer is sealed (background
  ///   mode) or flushed inline, exactly like a filling write.
  /// - size_ratio / policy changes are realized incrementally: the next
  ///   flush into any level applies the new merge rules there, and
  ///   AdvanceMigration() reshapes one non-conforming level per call so a
  ///   maintenance loop can migrate the tree without a stop-the-world
  ///   rebuild.
  /// Page geometry and storage placement (entries_per_page, backend,
  /// storage_dir, background_maintenance) are immutable; changing them
  /// returns InvalidArgument and leaves the tree untouched.
  Status Reconfigure(const Options& new_options);

  /// True while the latest Reconfigure may have left some level
  /// violating the current policy/size-ratio shape. A cached flag (O(1),
  /// checked on every write's maintenance hook): set by Reconfigure,
  /// cleared by the first AdvanceMigration that finds every level
  /// conforming.
  bool MigrationPending() const;

  /// Performs one bounded migration step: finds the shallowest
  /// non-conforming level and merges/pushes its runs into the current
  /// geometry via the normal compaction machinery. `*did_work` is set
  /// true when a step ran, false when the tree already conforms; callers
  /// (ShardedDB maintenance jobs, DB::ApplyTuning) loop or reschedule
  /// until it stays false. On failure the level keeps its runs (the step
  /// simply did not happen) and the call is retryable.
  Status AdvanceMigration(bool* did_work);

  /// Epoch/shape progress of the latest reconfiguration.
  MigrationProgress Progress() const;

  /// Tuning epoch of runs built now (bumped by each Reconfigure).
  uint64_t tuning_epoch() const { return tuning_epoch_; }

  /// Builds a settled tree from `sorted_entries` (strictly ascending keys),
  /// filling levels bottom-up to capacity and stride-partitioning keys so
  /// every run spans the key domain (steady-state shape). Must be called on
  /// an empty tree. On failure the tree stays empty (every partial run is
  /// abandoned) and the load may be retried.
  Status BulkLoad(const std::vector<Entry>& sorted_entries);

  /// Deepest level with any run (0 when the tree is empty).
  int DeepestLevel() const;

  /// Per-level summaries.
  std::vector<LevelInfo> GetLevelInfos() const;

  /// Entries across memtable and all runs (shadowed duplicates included).
  uint64_t TotalEntries() const;

  /// Entry capacity of `level` (1-based): (T-1) * T^(level-1) * buffer.
  uint64_t LevelCapacity(int level) const;

  const Options& options() const { return opts_; }
  const MemTable& memtable() const { return *active_; }
  Statistics* stats() const { return stats_; }

  // --- durability (docs/durability.md) ---
  // A durable tree (Options::durability, file backend) logs every write
  // to a WAL before acknowledging it and publishes a manifest after every
  // structural change. The open-recover sequence is:
  //   LsmTree tree(recovered_options, store, stats);   // empty tree
  //   tree.RecoverFrom(manifest);   // adopt segments, rebuild runs
  //   tree.ReplayWal(wal_path);     // restore the memtable
  //   tree.AttachDurability(dir);   // open the WAL, checkpoint once
  // DB::Open and ShardedDB::Open drive this; tests may too.

  /// Restores levels, tuning epoch, migration flag and cursors from a
  /// manifest. Requires an empty tree on a persistent FilePageStore;
  /// adopts every referenced segment (error if one is missing/short) and
  /// reaps unreferenced segment files afterwards.
  Status RecoverFrom(const ManifestData& m);

  /// Replays every intact WAL record into the memtable through the
  /// normal write path (flushing/sealing when it fills), without
  /// re-logging. Returns the number of entries replayed and advances the
  /// sequence counter past the highest replayed seq.
  StatusOr<uint64_t> ReplayWal(const std::string& wal_path);

  /// Starts durable operation rooted at `dir`: opens the WAL for
  /// appending and checkpoints once, leaving `dir` consistent. Under
  /// WalSyncMode::kBackground a non-null `flush_service` (owned by the
  /// DB/ShardedDB, outliving the tree) drives this tree's periodic WAL
  /// syncs instead of a per-tree flusher thread — one thread per
  /// deployment rather than per shard.
  Status AttachDurability(const std::string& dir,
                          WalFlushService* flush_service = nullptr);

  /// Publishes the manifest (atomic replace) and rewrites the WAL down
  /// to exactly the resident memtable contents, then reaps segment files
  /// the new manifest no longer references. Called automatically after
  /// flushes, migrations, reconfigurations and bulk loads. The appender
  /// and its background-sync state survive the rewrite (the fd is
  /// swapped in place), so checkpoint frequency can never postpone or
  /// duplicate an interval sync.
  Status Checkpoint();

  /// Snapshot of the durable state (run layout, tuning, cursors).
  ManifestData ToManifest() const;

  /// Drops the WAL writer exactly as a crash would: staged-but-unsynced
  /// records are lost, no final checkpoint happens. Kill-point test hook.
  void CrashForTesting();

 private:
  Status Write(const Entry& e);
  /// Post-insert maintenance: seals (background mode) or flushes a full
  /// buffer — shared by the write path and WAL replay.
  Status MaintainAfterWrite();
  /// Detaches and flushes the sealed buffer (which must exist), without
  /// checkpointing — shared by FlushSealedMemtable and Flush so the
  /// detach-before-flush protocol lives in one place. On failure the
  /// buffer is reinstalled as sealed_ (no entry is lost).
  Status FlushSealedInternal();
  /// Appends one entry record to the WAL (no commit — callers group).
  void StageWalRecord(const Entry& e);
  /// Commits staged WAL records (one write; fsync under kPerBatch).
  Status CommitWal();
  /// Replays one WAL entry through the write path, without logging.
  Status ReplayEntry(const Entry& e);
  /// Publishes the manifest and purges deferred segment deletes — the
  /// cheap half of Checkpoint(), sufficient when the memtables did not
  /// change (migration steps, tuning-only reconfigures): the resident
  /// WAL stays exactly right, so no rewrite and no extra fsyncs.
  Status PublishManifest();
  /// Checkpoint()/PublishManifest() when durable, no-op otherwise.
  Status CheckpointIfDurable();
  Status PublishManifestIfDurable();
  /// Moves the full active buffer into the sealed slot (which must be
  /// empty) and installs a fresh active buffer.
  void SealMemtable();
  /// Rebuilds and atomically publishes the ReadSnapshot from the current
  /// members. Called (under the owner's lock) after every structural
  /// change a reader may observe: construction, seal, flush, maintenance
  /// install, migration step, reconfigure, bulk load, recovery.
  void PublishSnapshot();
  /// Advances the visible sequence to at least `seq` (release store).
  /// Called right after an entry is applied to the active memtable —
  /// visibility follows apply, not WAL commit, so at most one
  /// applied-but-unacknowledged write per tree is readable early.
  void BumpVisible(SeqNum seq);
  /// The active buffer's current seal threshold: the arbiter override
  /// when one is set, Options::buffer_entries otherwise.
  uint64_t EffectiveBufferCapacity() const {
    return buffer_capacity_override_ != 0 ? buffer_capacity_override_
                                          : opts_.buffer_entries;
  }
  /// Streams `buffer` out as a level-1 run and cascades compactions. On
  /// failure nothing new is resident (the caller still owns the buffer's
  /// entries).
  Status FlushBuffer(const MemTable& buffer);
  /// Flush + policy cascade entry point. Failure contract: the incoming
  /// run is NOT resident anywhere (the caller still owns its entries via
  /// whatever produced it), this level and deeper keep the runs they had
  /// — so every caller can restore its source and retry.
  Status AddRunToLevel(std::shared_ptr<Run> run, int level);
  /// Bloom budget for a run landing on `level`, given the current tree
  /// depth (re-derived from the Monkey allocation each time).
  double FilterBitsForLevel(int level, int projected_depth) const;
  /// True when no level deeper than `level` holds a run.
  bool NothingBelow(int level) const;
  /// True when `level` (1-based) satisfies the current policy/size-ratio
  /// shape: leveling-like levels hold one run within capacity, tiering
  /// levels fewer than T runs.
  bool LevelConforms(int level) const;
  /// True when some level violates LevelConforms.
  bool AnyNonConforming() const;
  /// Stamps a freshly built run with the current tuning epoch.
  void Stamp(const std::shared_ptr<Run>& run) {
    run->set_tuning_epoch(tuning_epoch_);
  }
  /// Ensures levels_ has slots up to `level` (1-based).
  void EnsureLevel(int level);
  /// Projected total depth if the tree must hold `entries` entries.
  int ProjectedDepth(uint64_t entries) const;

  Options opts_;
  PageStore* store_;
  Statistics* stats_;
  /// Durable mode only: `store_` downcast, for segment adoption and
  /// deferred-delete purging (null when durability is off).
  FilePageStore* file_store_ = nullptr;
  std::string durable_dir_;  ///< empty until AttachDurability
  /// Shared background-sync driver (not owned; may be null — the writer
  /// then runs its own flusher thread under kBackground).
  WalFlushService* flush_service_ = nullptr;
  std::unique_ptr<WalWriter> wal_;  ///< null until AttachDurability
  /// The mutable write buffer. Shared: superseded read snapshots keep
  /// the old buffer alive after a flush swaps a fresh one in.
  std::shared_ptr<MemTable> active_;
  /// Full buffer awaiting flush (or null). Shared so an off-lock flush
  /// unit can keep reading it while a racing foreground Flush detaches
  /// it — install then notices sealed_ changed and discards the output.
  std::shared_ptr<MemTable> sealed_;
  /// The published read view (see ReadSnapshot). Writers store with
  /// release under their serialization; readers load with acquire.
  AtomicSnapshotPtr snapshot_;
  /// Highest sequence applied to the memtable (monotone; single writer).
  std::atomic<SeqNum> visible_seq_{0};
  /// See set_deferred_backpressure().
  bool deferred_backpressure_ = false;
  /// Arbiter override of the seal threshold (0 = none); see
  /// SetBufferCapacity().
  uint64_t buffer_capacity_override_ = 0;
  SeqNum next_seq_ = 1;
  uint64_t tuning_epoch_ = 0;  ///< bumped by Reconfigure; stamps new runs
  /// Maybe-work flag for MigrationPending() (see its contract).
  bool migration_pending_ = false;
  /// Read-only degraded-mode latch (see Health()). The flag is the
  /// lock-free "healthy" fast path; the Status itself is guarded by
  /// latch_mu_ so concurrent readers can latch without a data race.
  std::atomic<bool> error_latched_{false};
  mutable std::mutex latch_mu_;
  Status background_error_;  ///< guarded by latch_mu_
  /// levels_[i] holds level i+1; runs ordered newest first.
  std::vector<std::vector<std::shared_ptr<Run>>> levels_;
};

// Shared open-recover plumbing (DB::Open and ShardedDB::Open drive the
// same sequence per tree; keeping it here prevents the two recovery
// paths from drifting).

/// If `dir` holds a manifest, reads it into `m`, folds its persisted
/// tuning into `opts` (validating the merged options — a CRC-valid
/// manifest can still carry knobs this build rejects, which must
/// surface as a Status, never an abort downstream), checks the page
/// geometry, and returns true. Returns false on a fresh directory.
StatusOr<bool> LoadDurableState(const std::string& dir, Options* opts,
                                ManifestData* m);

/// The per-tree recovery tail: when `existing`, recovers from `m`,
/// replays `dir`'s WAL and counts the recovery; always attaches
/// durability (opens the WAL appender — registered with `flush_service`
/// when given — and checkpoints once). Thread-safe across trees: the
/// parallel ShardedDB::Open runs one call per shard concurrently.
Status RecoverAndAttach(LsmTree* tree, const ManifestData& m,
                        bool existing, const std::string& dir,
                        WalFlushService* flush_service = nullptr);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_LSM_TREE_H_
