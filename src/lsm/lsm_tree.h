// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The LSM tree proper: memtable + exponentially-capacitated levels of
// sorted runs, with classic leveling or tiering compaction, per-level
// Monkey Bloom filters and full I/O accounting. This is the engine the
// system experiments (Section 8) run against, standing in for the paper's
// hook-instrumented RocksDB.

#ifndef ENDURE_LSM_LSM_TREE_H_
#define ENDURE_LSM_LSM_TREE_H_

#include <memory>
#include <optional>
#include <vector>

#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/monkey_allocator.h"
#include "lsm/options.h"
#include "lsm/page_store.h"
#include "lsm/run.h"

namespace endure::lsm {

/// Per-level summary for diagnostics and tests.
struct LevelInfo {
  int level = 0;           ///< 1-based level number
  size_t num_runs = 0;     ///< runs currently resident
  uint64_t num_entries = 0;///< total entries across the level's runs
  uint64_t capacity = 0;   ///< entry capacity (T-1) * T^(i-1) * buffer
  Key min_key = 0;         ///< smallest key on the level (0 when empty)
  Key max_key = 0;         ///< largest key on the level (0 when empty)
};

/// The storage engine core. A single LsmTree performs no internal
/// locking: callers serialize access to it (the experiment harness runs
/// one thread, as in the paper; ShardedDB guards each shard's tree with
/// the shard mutex and runs maintenance jobs under it). With
/// `Options::background_maintenance` the tree never flushes inline —
/// filling the write buffer seals it into an immutable slot that stays
/// readable (and is consulted by Get/Scan between the active buffer and
/// the runs) until FlushSealedMemtable() pushes it into level 1; see
/// docs/architecture.md ("Concurrency model").
class LsmTree {
 public:
  /// `store` and `stats` must outlive the tree.
  LsmTree(const Options& options, PageStore* store, Statistics* stats);
  ENDURE_DISALLOW_COPY_AND_ASSIGN(LsmTree);

  /// Inserts or updates a key.
  void Put(Key key, Value value);

  /// Deletes a key (tombstone write).
  void Delete(Key key);

  /// Point lookup: memtable, then levels shallow-to-deep, runs
  /// newest-to-oldest; first match wins.
  std::optional<Value> Get(Key key);

  /// Range query over [lo, hi): merges all qualifying sources, returns
  /// live entries in key order.
  std::vector<Entry> Scan(Key lo, Key hi);

  /// Flushes the sealed buffer (if any) and then the active memtable, in
  /// age order. Also triggered automatically when the buffer fills and
  /// background maintenance is off.
  void Flush();

  /// True when a sealed (full, immutable, not yet flushed) buffer is
  /// pending maintenance.
  bool HasSealedMemtable() const { return sealed_ != nullptr; }

  /// Flushes the sealed buffer into level 1 (no-op when none is pending).
  /// ShardedDB's background jobs call this under the shard lock.
  void FlushSealedMemtable();

  /// Builds a settled tree from `sorted_entries` (strictly ascending keys),
  /// filling levels bottom-up to capacity and stride-partitioning keys so
  /// every run spans the key domain (steady-state shape). Must be called on
  /// an empty tree.
  void BulkLoad(const std::vector<Entry>& sorted_entries);

  /// Deepest level with any run (0 when the tree is empty).
  int DeepestLevel() const;

  /// Per-level summaries.
  std::vector<LevelInfo> GetLevelInfos() const;

  /// Entries across memtable and all runs (shadowed duplicates included).
  uint64_t TotalEntries() const;

  /// Entry capacity of `level` (1-based): (T-1) * T^(level-1) * buffer.
  uint64_t LevelCapacity(int level) const;

  const Options& options() const { return opts_; }
  const MemTable& memtable() const { return *active_; }
  Statistics* stats() const { return stats_; }

 private:
  void Write(const Entry& e);
  /// Moves the full active buffer into the sealed slot (which must be
  /// empty) and installs a fresh active buffer.
  void SealMemtable();
  /// Streams `buffer` out as a level-1 run and cascades compactions.
  void FlushBuffer(const MemTable& buffer);
  /// Flush + policy cascade entry point.
  void AddRunToLevel(std::shared_ptr<Run> run, int level);
  /// Bloom budget for a run landing on `level`, given the current tree
  /// depth (re-derived from the Monkey allocation each time).
  double FilterBitsForLevel(int level, int projected_depth) const;
  /// True when no level deeper than `level` holds a run.
  bool NothingBelow(int level) const;
  /// Ensures levels_ has slots up to `level` (1-based).
  void EnsureLevel(int level);
  /// Projected total depth if the tree must hold `entries` entries.
  int ProjectedDepth(uint64_t entries) const;

  Options opts_;
  PageStore* store_;
  Statistics* stats_;
  std::unique_ptr<MemTable> active_;  ///< the mutable write buffer
  std::unique_ptr<MemTable> sealed_;  ///< full buffer awaiting flush (or null)
  SeqNum next_seq_ = 1;
  /// levels_[i] holds level i+1; runs ordered newest first.
  std::vector<std::vector<std::shared_ptr<Run>>> levels_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_LSM_TREE_H_
