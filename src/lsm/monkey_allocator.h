// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Per-level Bloom-filter memory allocation following Monkey (Dayan et al.,
// SIGMOD'17), the scheme both the paper's cost model (Eq. 11) and its
// RocksDB deployment use: deeper (larger) levels get fewer bits per entry,
// with false-positive rates f_i(T) = T^{T/(T-1)} / T^{L+1-i} * e^{-h ln^2 2}
// clamped to [0, 1]. Bits per entry at level i follow as
// -ln(f_i) / ln(2)^2.

#ifndef ENDURE_LSM_MONKEY_ALLOCATOR_H_
#define ENDURE_LSM_MONKEY_ALLOCATOR_H_

#include <vector>

#include "lsm/options.h"

namespace endure::lsm {

/// Computes per-level filter sizing for a tree of `levels` levels.
class MonkeyAllocator {
 public:
  /// `bits_per_entry` is the tree-wide average budget h; `size_ratio` is T.
  MonkeyAllocator(double bits_per_entry, int size_ratio, int levels,
                  FilterAllocation allocation);

  /// Budgeted bits per entry for a run on `level` (1-based). Zero when the
  /// optimal false-positive rate saturates at 1 (no filter is worth it).
  double BitsPerEntry(int level) const;

  /// The design false-positive rate for `level` (1-based), in [0, 1].
  double FalsePositiveRate(int level) const;

  int levels() const { return levels_; }

 private:
  int levels_;
  std::vector<double> fpr_;   // per level, index 0 = level 1
  std::vector<double> bits_;  // per level, index 0 = level 1
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_MONKEY_ALLOCATOR_H_
