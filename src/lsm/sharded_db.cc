#include "lsm/sharded_db.h"

#include <algorithm>

#include "lsm/merge_iterator.h"

namespace endure::lsm {

ShardedDB::ShardedDB(const Options& options) : options_(options) {
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Shards share storage_dir: FilePageStore segment names carry a
    // per-instance tag, so no subdirectories are needed.
    shard->store = MakePageStore(options_.entries_per_page, &shard->stats,
                                 static_cast<int>(options_.backend),
                                 options_.storage_dir);
    shard->tree = std::make_unique<LsmTree>(options_, shard->store.get(),
                                            &shard->stats);
    shards_.push_back(std::move(shard));
  }
  if (options_.background_maintenance) {
    pool_ = std::make_unique<ThreadPool>(
        std::min(shards_.size(), DefaultParallelism()));
  }
}

ShardedDB::~ShardedDB() {
  // pool_ (declared last) is destroyed first, draining queued jobs while
  // the shards they reference are still alive; nothing else to do here.
}

StatusOr<std::unique_ptr<ShardedDB>> ShardedDB::Open(const Options& options) {
  ENDURE_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<ShardedDB>(new ShardedDB(options));
}

size_t ShardedDB::ShardForKey(Key key) const {
  // Fibonacci hashing: spreads sequential keys (the workload generators
  // use dense even keys) evenly across shards.
  uint64_t h = key * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return static_cast<size_t>(h % shards_.size());
}

void ShardedDB::MaybeScheduleMaintenance(Shard* shard) {
  if (pool_ == nullptr || shard->maintenance_scheduled ||
      (!shard->tree->HasSealedMemtable() &&
       !shard->tree->MigrationPending())) {
    return;
  }
  shard->maintenance_scheduled = true;
  // TrySubmit: a job that outlives the last foreground op can race pool
  // shutdown; dropping it is fine (the whole DB is being torn down).
  const bool queued = pool_->TrySubmit([this, shard] {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->maintenance_scheduled = false;
    // One unit of work per job, then yield and reschedule: either a
    // single migration step (reshape one level toward the current
    // tuning) or the sealed-buffer flush. Migration goes first — while
    // the tree is mid-migration a flush would cascade through every
    // non-conforming level in one unbounded lock hold, whereas step +
    // flush keeps each hold bounded and lets foreground ops interleave.
    // The sealed buffer stays readable (and Write's backpressure still
    // bounds it to one) until its turn comes.
    if (!shard->tree->AdvanceMigration()) {
      shard->tree->FlushSealedMemtable();
    }
    MaybeScheduleMaintenance(shard);
  });
  if (!queued) shard->maintenance_scheduled = false;
}

void ShardedDB::Put(Key key, Value value) {
  Shard* shard = shards_[ShardForKey(key)].get();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->tree->Put(key, value);
  MaybeScheduleMaintenance(shard);
}

void ShardedDB::Delete(Key key) {
  Shard* shard = shards_[ShardForKey(key)].get();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->tree->Delete(key);
  MaybeScheduleMaintenance(shard);
}

std::optional<Value> ShardedDB::Get(Key key) {
  Shard* shard = shards_[ShardForKey(key)].get();
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->tree->Get(key);
}

std::vector<Entry> ShardedDB::Scan(Key lo, Key hi) {
  if (shards_.size() == 1) {
    Shard* shard = shards_.front().get();
    std::lock_guard<std::mutex> lock(shard->mu);
    return shard->tree->Scan(lo, hi);
  }
  // Snapshot each shard under its lock, then merge outside any lock.
  // Shards hold disjoint key sets, so the merge is a sorted union (ranks
  // never break ties) and per-shard results carry no tombstones.
  std::vector<std::unique_ptr<EntryStream>> streams;
  streams.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::vector<Entry> part;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      part = shard->tree->Scan(lo, hi);
    }
    if (!part.empty()) {
      streams.push_back(std::make_unique<VectorStream>(std::move(part)));
    }
  }
  MergeIterator merge(std::move(streams));
  return DrainMerge(&merge, /*drop_tombstones=*/true);
}

void ShardedDB::Flush() {
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->tree->Flush();
  }
}

void ShardedDB::WaitForMaintenance() {
  if (pool_ != nullptr) pool_->Wait();
}

Status ShardedDB::BulkLoad(
    const std::vector<std::pair<Key, Value>>& sorted_pairs) {
  if (TotalEntries() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty database");
  }
  std::vector<std::vector<Entry>> parts(shards_.size());
  for (size_t i = 0; i < sorted_pairs.size(); ++i) {
    const auto& [key, value] = sorted_pairs[i];
    if (i > 0 && sorted_pairs[i - 1].first >= key) {
      return Status::InvalidArgument(
          "BulkLoad input must be strictly ascending by key");
    }
    parts[ShardForKey(key)].push_back(
        Entry{key, /*seq=*/0, value, EntryType::kValue});
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (parts[s].empty()) continue;
    Shard* shard = shards_[s].get();
    std::lock_guard<std::mutex> lock(shard->mu);
    // Re-check emptiness under the shard lock: a Put racing BulkLoad must
    // surface as this error (possibly after other shards loaded), never
    // as the tree's empty-precondition abort.
    if (shard->tree->TotalEntries() != 0) {
      return Status::FailedPrecondition(
          "BulkLoad raced a concurrent write; shard no longer empty");
    }
    shard->tree->BulkLoad(parts[s]);
  }
  return Status::OK();
}

Status ShardedDB::ApplyTuning(const Options& new_options) {
  ENDURE_RETURN_IF_ERROR(new_options.Validate());
  // Serialize concurrent retunes (and the options_ publication below):
  // interleaved per-shard Reconfigures from two applies would leave the
  // deployment at mixed tunings.
  std::lock_guard<std::mutex> apply_lock(options_mu_);
  // Validate the immutable knobs up front so the per-shard loop below can
  // never fail half-applied (LsmTree::Reconfigure re-checks the same
  // set plus page geometry).
  if (new_options.num_shards != options_.num_shards) {
    return Status::InvalidArgument(
        "num_shards cannot change on a live database");
  }
  if (new_options.entries_per_page != options_.entries_per_page) {
    return Status::InvalidArgument(
        "entries_per_page is fixed at open (page geometry is shared with "
        "the page stores)");
  }
  if (new_options.backend != options_.backend ||
      new_options.storage_dir != options_.storage_dir) {
    return Status::InvalidArgument(
        "storage backend and directory cannot change on a live database");
  }
  if (new_options.background_maintenance !=
      options_.background_maintenance) {
    return Status::InvalidArgument(
        "background_maintenance cannot change on a live database");
  }

  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    // Cheap under the lock: Reconfigure retargets the buffer and bumps
    // the epoch; the structural migration runs in background steps.
    const Status s = shard->tree->Reconfigure(new_options);
    ENDURE_CHECK_MSG(s.ok(), "per-shard Reconfigure failed after "
                             "ApplyTuning validated the options");
    if (pool_ != nullptr) {
      MaybeScheduleMaintenance(shard);
    } else {
      // Foreground mode: converge this shard's structure inline (the
      // caller opted out of background work entirely).
      while (shard->tree->AdvanceMigration()) {
      }
    }
  }
  options_ = new_options;
  return Status::OK();
}

MigrationProgress ShardedDB::Progress() const {
  MigrationProgress total;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    total.Accumulate(shard->tree->Progress());
  }
  return total;
}

Statistics ShardedDB::TotalStats() const {
  Statistics total;
  for (const auto& shard : shards_) total.Accumulate(shard->stats);
  return total;
}

Statistics ShardedDB::ShardStats(size_t shard) const {
  return shards_[shard]->stats;
}

uint64_t ShardedDB::TotalEntries() const {
  uint64_t total = 0;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->tree->TotalEntries();
  }
  return total;
}

}  // namespace endure::lsm
