#include "lsm/sharded_db.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "lsm/manifest.h"
#include "lsm/merge_iterator.h"
#include "util/env.h"

namespace endure::lsm {

namespace {

std::string ShardDir(const std::string& root, int shard) {
  return root + "/shard_" + std::to_string(shard);
}

/// Publishes the deployment root manifest: shard count + the tuning the
/// deployment currently runs (shared by Open's fresh path and
/// ApplyTuning so the two sites can never drift).
Status WriteRootManifest(const std::string& root_dir, const Options& opts,
                         int num_shards) {
  ManifestData root;
  root.RecordTuningFrom(opts);
  root.kind = kManifestKindShardedRoot;
  root.num_shards = num_shards;
  return WriteManifest(root_dir + "/" + kManifestFileName, root);
}

}  // namespace

ShardedDB::ShardedDB(const Options& options, bool defer_shards)
    : options_(options) {
  if (options_.durability &&
      options_.wal_sync_mode == WalSyncMode::kBackground &&
      options_.shared_wal_flusher) {
    flush_service_ =
        std::make_unique<WalFlushService>(options_.wal_sync_interval_ms);
  }
  if (options_.block_cache_bytes > 0) {
    // One cache for the whole deployment: shards share the byte budget
    // by demand, not by a fixed per-shard split.
    cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  }
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  if (!defer_shards) {
    for (int i = 0; i < options_.num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      // Ephemeral shards share storage_dir: FilePageStore segment names
      // carry a per-instance tag, so no subdirectories are needed.
      shard->store = MakePageStore(options_.entries_per_page, &shard->stats,
                                   static_cast<int>(options_.backend),
                                   options_.storage_dir);
      if (cache_ != nullptr) shard->store->set_block_cache(cache_.get());
      shard->tree = std::make_unique<LsmTree>(options_, shard->store.get(),
                                              &shard->stats);
      shards_.push_back(std::move(shard));
    }
  }
  if (options_.background_maintenance) {
    const size_t workers =
        options_.maintenance_threads > 0
            ? static_cast<size_t>(options_.maintenance_threads)
            : std::min(static_cast<size_t>(options_.num_shards),
                       DefaultParallelism());
    pool_ = std::make_unique<ThreadPool>(workers);
    CompactionScheduler::Config cfg;
    // Admission as wide as the pool: the pool's FIFO queue then never
    // holds a waiting job, so it can never invert the scheduler's
    // priority order. Partition subtasks still fit — RunSubtasks has the
    // merge thread participate, recruiting helpers only when workers are
    // free.
    cfg.max_parallel = workers;
    cfg.rate_bytes_per_sec = options_.compaction_rate_bytes_per_sec;
    scheduler_ = std::make_unique<CompactionScheduler>(pool_.get(), cfg,
                                                       &sched_stats_);
    // With a scheduler attached, a writer that fills the active buffer
    // while a sealed one is still pending defers to backpressure
    // (MaybeStallWrites) instead of flushing inline under its own lock
    // hold.
    for (auto& shard : shards_) {
      shard->tree->set_deferred_backpressure(true);
    }
  }
}

ShardedDB::~ShardedDB() {
  // Stop the scheduler first: queued and delayed jobs are dropped and
  // in-flight ones cannot reschedule. pool_ (declared last) is then
  // destroyed, draining its in-flight jobs while the shards and the
  // scheduler they reference are still alive. Durable shards sync their
  // WALs in the tree teardown (clean close loses nothing, whatever the
  // sync mode).
  if (scheduler_ != nullptr) scheduler_->Stop();
}

StatusOr<std::unique_ptr<ShardedDB>> ShardedDB::Open(const Options& options) {
  ENDURE_RETURN_IF_ERROR(options.Validate());
  if (!options.durability) {
    return std::unique_ptr<ShardedDB>(new ShardedDB(options));
  }

  // Durable open: the deployment root holds a root manifest (shard count
  // + last applied tuning) and one subdirectory per shard.
  Options opts = options;
  ENDURE_RETURN_IF_ERROR(EnsureDir(opts.storage_dir));
  auto lock_or =
      FileLock::Acquire(opts.storage_dir + "/" + kLockFileName);
  if (!lock_or.ok()) return lock_or.status();
  ManifestData root;
  auto root_existing_or = LoadDurableState(opts.storage_dir, &opts, &root);
  if (!root_existing_or.ok()) return root_existing_or.status();
  if (*root_existing_or) {
    // Without the kind check a plain-DB directory opened with
    // num_shards=1 would recover a fresh empty shard_0 and ignore the
    // DB's data sitting at the root.
    if (root.kind != kManifestKindShardedRoot) {
      return Status::InvalidArgument(
          "storage_dir holds a plain DB deployment; open it with "
          "DB::Open");
    }
    if (root.num_shards != opts.num_shards) {
      return Status::InvalidArgument(
          "deployment was created with " + std::to_string(root.num_shards) +
          " shards; num_shards is immutable across reopens");
    }
  } else {
    // Publish the root manifest BEFORE any shard directory exists: a
    // crash mid-first-open must never leave recovered shard state
    // without the num_shards record that guards reopens.
    ENDURE_RETURN_IF_ERROR(
        WriteRootManifest(opts.storage_dir, opts, opts.num_shards));
  }

  auto db =
      std::unique_ptr<ShardedDB>(new ShardedDB(opts, /*defer_shards=*/true));
  db->lock_ = std::move(lock_or).value();

  // Recover the shard directories concurrently: per-shard recovery is
  // fully independent (own manifest, WAL, page store and statistics),
  // so restart latency is the max over shards, not the sum. `slots` is
  // declared after `db` on purpose — if any shard fails, the return
  // below destroys the recovered shards FIRST (their WAL writers
  // deregister from the flush service, threads and fds close) and the
  // ShardedDB (flush service, maintenance pool, LOCK file) after: a
  // failed open leaks nothing and leaves the deployment reopenable.
  std::vector<std::unique_ptr<Shard>> slots(
      static_cast<size_t>(opts.num_shards));
  std::vector<Status> results(static_cast<size_t>(opts.num_shards));
  const size_t workers =
      opts.recovery_threads > 0
          ? static_cast<size_t>(opts.recovery_threads)
          : std::min(static_cast<size_t>(opts.num_shards),
                     DefaultParallelism());
  ShardedDB* raw = db.get();
  ParallelFor(static_cast<size_t>(opts.num_shards), workers,
              [raw, &opts, &slots, &results](size_t i) {
                results[i] = raw->RecoverShard(opts, static_cast<int>(i),
                                               &slots[i]);
              });
  // Deterministic first-error propagation: always the lowest-numbered
  // failing shard, whatever order the workers finished in.
  for (const Status& s : results) {
    ENDURE_RETURN_IF_ERROR(s);
  }
  for (auto& shard : slots) db->shards_.push_back(std::move(shard));

  // Resume interrupted work: shards that recovered mid-migration (or
  // with a sealed buffer rebuilt by replay) reschedule immediately on
  // the scheduler; without one (foreground mode) the migration converges
  // inline here, mirroring ApplyTuning's foreground behaviour.
  for (auto& shard_ptr : db->shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    if (db->scheduler_ != nullptr) {
      shard->tree->set_deferred_backpressure(true);
      db->MaybeScheduleMaintenance(shard);
    } else {
      bool did_work = true;
      while (did_work) {
        // A failed resume step fails the open as a whole: nothing is
        // lost (the level kept its runs) and a reopen retries from
        // exactly here.
        ENDURE_RETURN_IF_ERROR(shard->tree->AdvanceMigration(&did_work));
      }
    }
  }
  return db;
}

Status ShardedDB::RecoverShard(const Options& root_opts, int index,
                               std::unique_ptr<Shard>* out) {
  Options shard_opts = root_opts;
  shard_opts.storage_dir = ShardDir(root_opts.storage_dir, index);
  ENDURE_RETURN_IF_ERROR(EnsureDir(shard_opts.storage_dir));
  // A crash mid-ApplyTuning can leave shards at mixed tunings; each
  // shard resumes its own persisted state (a later ApplyTuning
  // re-levels the deployment).
  ManifestData m;
  auto existing_or =
      LoadDurableState(shard_opts.storage_dir, &shard_opts, &m);
  if (!existing_or.ok()) return existing_or.status();
  auto shard = std::make_unique<Shard>();
  shard->store = MakePageStore(shard_opts.entries_per_page, &shard->stats,
                               static_cast<int>(shard_opts.backend),
                               shard_opts.storage_dir,
                               /*persistent=*/true,
                               shard_opts.verify_checksums,
                               shard_opts.scrub_on_recovery);
  // Thread-safe across concurrent shard recoveries: registration is one
  // atomic id allocation.
  if (cache_ != nullptr) shard->store->set_block_cache(cache_.get());
  shard->tree = std::make_unique<LsmTree>(shard_opts, shard->store.get(),
                                          &shard->stats);
  ENDURE_RETURN_IF_ERROR(RecoverAndAttach(shard->tree.get(), m,
                                          *existing_or,
                                          shard_opts.storage_dir,
                                          flush_service_.get()));
  *out = std::move(shard);
  return Status::OK();
}

size_t ShardedDB::ShardForKey(Key key) const {
  // Fibonacci hashing: spreads sequential keys (the workload generators
  // use dense even keys) evenly across shards.
  uint64_t h = key * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  return static_cast<size_t>(h % shards_.size());
}

void ShardedDB::MaybeScheduleMaintenance(Shard* shard) {
  if (scheduler_ == nullptr || shard->maintenance_scheduled ||
      !shard->tree->Health().ok() || !shard->tree->HasMaintenanceWork()) {
    return;
  }
  shard->maintenance_scheduled = true;
  // Enqueue at the shard's CURRENT priority: a flush beats a migration
  // step beats a major compaction across all shards. Enqueue returns
  // false only during teardown; dropping the job is fine then.
  const bool queued =
      scheduler_->Enqueue(shard->tree->MaintenancePriority(),
                          [this, shard] { RunMaintenanceUnit(shard); });
  if (!queued) shard->maintenance_scheduled = false;
}

MergeLimits ShardedDB::MakeMergeLimits() const {
  MergeLimits limits;
  if (scheduler_ == nullptr) return limits;
  limits.limiter = scheduler_->limiter();
  limits.subtask_pool = scheduler_->subtask_pool();
  const Options opts = options();  // options_mu_ only; no shard lock held
  limits.max_subtasks =
      opts.compaction_max_subtasks > 0
          ? static_cast<size_t>(opts.compaction_max_subtasks)
          : std::min<size_t>(8, DefaultParallelism());
  limits.min_pages_to_partition =
      static_cast<size_t>(opts.compaction_partition_min_pages);
  return limits;
}

void ShardedDB::RunMaintenanceUnit(Shard* shard) {
  // Execution controls snapshot before taking the shard lock
  // (MakeMergeLimits takes options_mu_, which shard->mu nests inside).
  const MergeLimits limits = MakeMergeLimits();

  MaintenanceUnit unit;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->maintenance_scheduled = false;
    if (!shard->tree->Health().ok()) {
      shard->cv.notify_all();
      return;
    }
    unit = shard->tree->PrepareMaintenance();
    if (unit.kind == MaintenanceUnit::Kind::kNone) {
      // Nothing pending (a foreground op may have drained the work, or a
      // resolved migration just cleared its flag). Do NOT reschedule —
      // that would spin; the next write re-arms maintenance.
      shard->cv.notify_all();
      return;
    }
    shard->unit_in_flight = true;
  }

  // The expensive phase — merge/flush I/O — with the shard UNLOCKED:
  // foreground Get/Put/Scan proceed against the still-resident inputs.
  Status s = shard->tree->ExecuteMaintenance(&unit, limits);

  std::lock_guard<std::mutex> lock(shard->mu);
  shard->unit_in_flight = false;
  if (s.ok()) s = shard->tree->InstallMaintenance(&unit);
  if (s.ok()) {
    shard->maintenance_failures = 0;
    // Wake stalled writers BEFORE rescheduling: the install may have
    // cleared the sealed buffer or shrunk level 1 below the threshold.
    shard->cv.notify_all();
    MaybeScheduleMaintenance(shard);
    return;
  }
  // Transient-until-proven-permanent: the failed unit left the tree
  // consistent (a discarded output frees its segment; the inputs stayed
  // resident), so count the failure and back off. Retry knobs come from
  // the tree's own options — reading options_ here would invert the
  // options_mu_ → shard->mu lock order.
  ++shard->stats.io_retries;
  const int failures = ++shard->maintenance_failures;
  const int base_ms = shard->tree->options().background_retry_base_ms;
  if (failures > shard->tree->options().background_max_retries) {
    // Retry budget exhausted: declare the fault permanent and latch the
    // shard read-only. No reschedule — the pending work stays resident
    // (and durable state valid) for a reopen to retry.
    shard->tree->LatchBackgroundError(s);
    shard->cv.notify_all();
    return;
  }
  // Park the retry on the scheduler's deadline queue. Unlike the old
  // sleep-on-the-worker backoff, this frees the pool immediately — other
  // shards' maintenance proceeds while this shard waits out its delay.
  shard->maintenance_scheduled = true;
  const uint64_t delay_ms = static_cast<uint64_t>(
      std::min(base_ms << std::min(failures - 1, 7), 1000));
  const bool queued = scheduler_->EnqueueDelayed(
      shard->tree->MaintenancePriority(), delay_ms,
      [this, shard] { RunMaintenanceUnit(shard); });
  if (!queued) shard->maintenance_scheduled = false;
}

void ShardedDB::MaybeArbitrate(uint64_t ops) {
  if (cache_ == nullptr) return;
  // A relaxed counter decides *when* to rebalance; crossing a 1024-op
  // boundary elects (at least) one writer. The try-lock below keeps the
  // election cheap when several cross at once.
  constexpr uint64_t kArbiterPeriod = 1024;
  const uint64_t before = arbiter_ops_.fetch_add(ops,
                                                 std::memory_order_relaxed);
  if (before / kArbiterPeriod == (before + ops) / kArbiterPeriod) return;
  const Options opts = options();  // options_mu_ only; no shard lock held
  if (opts.memory_budget_bytes == 0) return;
  std::unique_lock<std::mutex> lock(arbiter_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // a rebalance is already running

  const Statistics total = TotalStats();
  const uint64_t reads = total.gets.load() + total.range_queries.load();
  const uint64_t writes = total.writes.load();
  // Buffers never shrink below one small memtable per shard, whatever
  // the read share — a zero-capacity buffer would seal on every write.
  const uint64_t min_buffer_bytes =
      shards_.size() * 16 * sizeof(Entry);
  const ArbiterSplit split = ArbitrateMemory(
      opts.memory_budget_bytes, reads, writes, min_buffer_bytes);

  cache_->set_capacity(split.cache_bytes);
  const uint64_t per_shard_entries = std::max<uint64_t>(
      1, split.buffer_bytes / (shards_.size() * sizeof(Entry)));
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->tree->SetBufferCapacity(per_shard_entries);
  }
  // Count a shift only when the split moved by more than 10% of the
  // budget — steady mixes should read as zero shifts, drifts as a few.
  const uint64_t delta = split.cache_bytes > last_cache_split_
                             ? split.cache_bytes - last_cache_split_
                             : last_cache_split_ - split.cache_bytes;
  if (delta * 10 > opts.memory_budget_bytes) {
    ++sched_stats_.arbiter_shifts;
    last_cache_split_ = split.cache_bytes;
  }
}

void ShardedDB::MaybeStallWrites(Shard* shard,
                                 std::unique_lock<std::mutex>* lock) {
  if (scheduler_ == nullptr) return;
  // Saturation: the write about to apply has nowhere to go (sealed
  // buffer pending AND active buffer full — deferred backpressure mode
  // never flushes inline) or level 1 has accumulated enough flushed runs
  // that reads are degrading faster than compaction is draining them.
  const auto saturated = [&] {
    const Options& topts = shard->tree->options();
    const size_t threshold =
        topts.l1_stall_runs > 0
            ? static_cast<size_t>(topts.l1_stall_runs)
            : static_cast<size_t>(topts.size_ratio) + 2;
    return (shard->tree->HasSealedMemtable() &&
            shard->tree->memtable().IsFull()) ||
           shard->tree->RunsInLevel(1) > threshold;
  };
  if (!saturated()) return;
  ++shard->stats.write_stalls;
  const auto start = std::chrono::steady_clock::now();
  while (saturated() && shard->tree->Health().ok() &&
         !scheduler_->stopped()) {
    MaybeScheduleMaintenance(shard);
    // Bounded slices rather than a bare wait: shutdown (scheduler Stop)
    // has no hook into per-shard cvs, so re-check its flag periodically.
    shard->cv.wait_for(*lock, std::chrono::milliseconds(5));
  }
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  shard->stats.compaction_stall_ms += static_cast<uint64_t>(waited.count());
}

Status ShardedDB::Put(Key key, Value value) {
  Shard* shard = shards_[ShardForKey(key)].get();
  Status s;
  {
    std::unique_lock<std::mutex> lock(shard->mu);
    MaybeStallWrites(shard, &lock);
    s = shard->tree->Put(key, value);
    MaybeScheduleMaintenance(shard);
  }
  MaybeArbitrate(1);
  return s;
}

Status ShardedDB::PutBatch(const std::vector<std::pair<Key, Value>>& pairs) {
  // Partition once, then one group commit per touched shard.
  std::vector<std::vector<std::pair<Key, Value>>> parts(shards_.size());
  for (const auto& pair : pairs) {
    parts[ShardForKey(pair.first)].push_back(pair);
  }
  Status first_error;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (parts[s].empty()) continue;
    Shard* shard = shards_[s].get();
    std::unique_lock<std::mutex> lock(shard->mu);
    // Backpressure checks once up front, so a batch may overshoot the
    // buffer by its own size — acceptable: batches group-commit and the
    // next write absorbs the stall.
    MaybeStallWrites(shard, &lock);
    // Keep going on error — the batch is documented as non-atomic across
    // shards, and one latched shard must not starve the healthy ones.
    const Status st = shard->tree->PutBatch(parts[s]);
    if (!st.ok() && first_error.ok()) first_error = st;
    MaybeScheduleMaintenance(shard);
  }
  MaybeArbitrate(pairs.size());
  return first_error;
}

Status ShardedDB::Delete(Key key) {
  Shard* shard = shards_[ShardForKey(key)].get();
  Status s;
  {
    std::unique_lock<std::mutex> lock(shard->mu);
    MaybeStallWrites(shard, &lock);
    s = shard->tree->Delete(key);
    MaybeScheduleMaintenance(shard);
  }
  MaybeArbitrate(1);
  return s;
}

std::optional<Value> ShardedDB::Get(Key key) {
  // No shard lock: the tree's snapshot protocol serves the read even
  // while this shard's writer or maintenance install holds the mutex.
  return shards_[ShardForKey(key)]->tree->Get(key);
}

StatusOr<std::vector<Entry>> ShardedDB::Scan(Key lo, Key hi) {
  if (shards_.size() == 1) {
    return shards_.front()->tree->Scan(lo, hi);
  }
  // Snapshot each shard lock-free, then merge. Shards hold disjoint key
  // sets, so the merge is a sorted union (ranks never break ties) and
  // per-shard results carry no tombstones.
  std::vector<std::unique_ptr<EntryStream>> streams;
  streams.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    StatusOr<std::vector<Entry>> part_or = shard->tree->Scan(lo, hi);
    // First failing shard wins; a partial cross-shard result would look
    // exactly like missing keys to the caller.
    ENDURE_RETURN_IF_ERROR(part_or.status());
    if (!part_or->empty()) {
      streams.push_back(
          std::make_unique<VectorStream>(std::move(*part_or)));
    }
  }
  MergeIterator merge(std::move(streams));
  return DrainMerge(&merge, /*drop_tombstones=*/true);
}

Status ShardedDB::Flush() {
  Status first_error;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    const Status s = shard->tree->Flush();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Status ShardedDB::Health() const {
  // No shard locks: the tree's health latch is thread-safe (lock-free
  // readers latch it too, so it cannot hide behind the shard mutex).
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    const Status s = shard->tree->Health();
    if (!s.ok()) {
      return Status(s.code(),
                    "shard " + std::to_string(i) + ": " + s.message());
    }
  }
  return Status::OK();
}

Status ShardedDB::Drain() {
  const Status flush_status = Flush();
  WaitForMaintenance();
  if (!flush_status.ok()) return flush_status;
  return Health();
}

std::vector<std::pair<std::string, uint64_t>> ShardedDB::RemoteStatsSnapshot()
    const {
  std::vector<std::pair<std::string, uint64_t>> out =
      TotalStats().Named();
  out.emplace_back("num_shards", static_cast<uint64_t>(shards_.size()));
  out.emplace_back("total_entries", TotalEntries());
  out.emplace_back("health_code",
                   static_cast<uint64_t>(Health().code()));
  const Options opts = options();
  out.emplace_back("size_ratio", static_cast<uint64_t>(opts.size_ratio));
  out.emplace_back("policy", static_cast<uint64_t>(opts.policy));
  out.emplace_back("buffer_entries", opts.buffer_entries);
  return out;
}

void ShardedDB::WaitForMaintenance() {
  // WaitIdle covers queued, delayed (backoff) and running jobs — a chain
  // of self-rescheduling units counts as continuously active, so the
  // return really is a quiescent point. The pool Wait then covers any
  // job admitted in the last instant.
  if (scheduler_ != nullptr) scheduler_->WaitIdle();
  if (pool_ != nullptr) pool_->Wait();
}

Status ShardedDB::BulkLoad(
    const std::vector<std::pair<Key, Value>>& sorted_pairs) {
  if (TotalEntries() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty database");
  }
  std::vector<std::vector<Entry>> parts(shards_.size());
  for (size_t i = 0; i < sorted_pairs.size(); ++i) {
    const auto& [key, value] = sorted_pairs[i];
    if (i > 0 && sorted_pairs[i - 1].first >= key) {
      return Status::InvalidArgument(
          "BulkLoad input must be strictly ascending by key");
    }
    parts[ShardForKey(key)].push_back(
        Entry{key, /*seq=*/0, value, EntryType::kValue});
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (parts[s].empty()) continue;
    Shard* shard = shards_[s].get();
    std::lock_guard<std::mutex> lock(shard->mu);
    // Re-check emptiness under the shard lock: a Put racing BulkLoad must
    // surface as this error (possibly after other shards loaded), never
    // as the tree's empty-precondition abort.
    if (shard->tree->TotalEntries() != 0) {
      return Status::FailedPrecondition(
          "BulkLoad raced a concurrent write; shard no longer empty");
    }
    // A failed shard load stays empty (all-or-nothing per shard); the
    // caller may retry the whole load after clearing the loaded shards.
    ENDURE_RETURN_IF_ERROR(shard->tree->BulkLoad(parts[s]));
  }
  return Status::OK();
}

Status ShardedDB::ApplyTuning(const Options& new_options) {
  ENDURE_RETURN_IF_ERROR(new_options.Validate());
  // Serialize concurrent retunes (and the options_ publication below):
  // interleaved per-shard Reconfigures from two applies would leave the
  // deployment at mixed tunings.
  std::lock_guard<std::mutex> apply_lock(options_mu_);
  // Validate the immutable knobs up front so the per-shard loop below can
  // never fail half-applied (LsmTree::Reconfigure re-checks the same
  // set plus page geometry).
  if (new_options.num_shards != options_.num_shards) {
    return Status::InvalidArgument(
        "num_shards cannot change on a live database");
  }
  if (new_options.entries_per_page != options_.entries_per_page) {
    return Status::InvalidArgument(
        "entries_per_page is fixed at open (page geometry is shared with "
        "the page stores)");
  }
  if (new_options.backend != options_.backend ||
      new_options.storage_dir != options_.storage_dir) {
    return Status::InvalidArgument(
        "storage backend and directory cannot change on a live database");
  }
  if (new_options.background_maintenance !=
      options_.background_maintenance) {
    return Status::InvalidArgument(
        "background_maintenance cannot change on a live database");
  }
  if (new_options.durability != options_.durability ||
      new_options.wal_sync_mode != options_.wal_sync_mode ||
      new_options.wal_sync_interval_ms != options_.wal_sync_interval_ms ||
      new_options.shared_wal_flusher != options_.shared_wal_flusher) {
    return Status::InvalidArgument(
        "durability and WAL sync settings cannot change on a live "
        "database");
  }
  if (new_options.maintenance_threads != options_.maintenance_threads) {
    return Status::InvalidArgument(
        "maintenance_threads is fixed at open (the pool is sized once)");
  }
  if (new_options.block_cache_bytes > 0 && cache_ == nullptr) {
    return Status::InvalidArgument(
        "block_cache_bytes cannot be enabled after open (the cache and "
        "its page-store registrations are built at open); reopen with a "
        "non-zero cache to enable it");
  }
  if (options_.durability) {
    // Republish the root manifest BEFORE touching any shard: the only
    // fallible durable step happens while the old tuning is still fully
    // in force, so an error here honors the "on apply error the DB
    // keeps its previous tuning" contract. (A crash after this write
    // but mid-loop is the documented mixed-tuning state: each shard
    // resumes its own manifest and the next ApplyTuning re-levels.)
    ENDURE_RETURN_IF_ERROR(WriteRootManifest(
        options_.storage_dir, new_options, options_.num_shards));
  }

  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    // Durable shards live in per-shard subdirectories; address each
    // tree's Reconfigure at its own placement (immutable per tree).
    Options shard_next = new_options;
    if (options_.durability) {
      shard_next.storage_dir =
          ShardDir(options_.storage_dir, static_cast<int>(i));
    }
    std::lock_guard<std::mutex> lock(shard->mu);
    // Cheap under the lock: Reconfigure retargets the buffer and bumps
    // the epoch; the structural migration runs in background steps. A
    // failure here (an I/O error flushing/persisting, or a latched
    // shard) leaves the deployment at mixed tunings — shards before
    // this one run the new tuning, this one and later keep the old —
    // which is exactly the documented crash-mid-ApplyTuning state:
    // every shard is individually consistent, and the next ApplyTuning
    // (or a reopen) re-levels the deployment. options_ keeps the old
    // tuning so a retry revalidates and republishes from scratch.
    const Status s = shard->tree->Reconfigure(shard_next);
    if (!s.ok()) {
      return Status(s.code(),
                    "ApplyTuning failed at shard " + std::to_string(i) +
                        " of " + std::to_string(shards_.size()) +
                        " (earlier shards run the new tuning; retry "
                        "re-levels): " + s.message());
    }
    if (scheduler_ != nullptr) {
      MaybeScheduleMaintenance(shard);
    } else {
      // Foreground mode: converge this shard's structure inline (the
      // caller opted out of background work entirely).
      bool did_work = true;
      while (did_work) {
        const Status ms = shard->tree->AdvanceMigration(&did_work);
        if (!ms.ok()) {
          return Status(ms.code(),
                        "ApplyTuning migration failed at shard " +
                            std::to_string(i) + " (state remains "
                            "consistent; retry resumes): " + ms.message());
        }
      }
    }
  }
  options_ = new_options;
  // Live-retune the shared merge throttle: in-flight Acquires pick the
  // new rate up within one wait slice.
  if (scheduler_ != nullptr) {
    scheduler_->limiter()->set_rate(options_.compaction_rate_bytes_per_sec);
  }
  // Live-retune the cache budget (0 turns it into a pass-through without
  // dropping the registrations). Under a memory budget the arbiter
  // re-splits from here on its next period.
  if (cache_ != nullptr) {
    cache_->set_capacity(options_.block_cache_bytes);
  }
  return Status::OK();
}

void ShardedDB::CrashForTesting() {
  // Stop the scheduler first (queued/delayed jobs and rate-limiter waits
  // are dropped), then Shutdown — not reset — the pool: in-flight jobs
  // finish — the crash point is after them — and may still read pool_
  // and scheduler_ while they wind down, so neither pointer may be
  // mutated under their feet.
  if (scheduler_ != nullptr) scheduler_->Stop();
  if (pool_ != nullptr) pool_->Shutdown();
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->tree->CrashForTesting();
  }
}

MigrationProgress ShardedDB::Progress() const {
  MigrationProgress total;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    total.Accumulate(shard->tree->Progress());
  }
  return total;
}

Statistics ShardedDB::TotalStats() const {
  Statistics total;
  for (const auto& shard : shards_) total.Accumulate(shard->stats);
  total.Accumulate(sched_stats_);  // scheduler counters are DB-wide
  return total;
}

Statistics ShardedDB::ShardStats(size_t shard) const {
  return shards_[shard]->stats;
}

uint64_t ShardedDB::TotalEntries() const {
  uint64_t total = 0;
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->tree->TotalEntries();
  }
  return total;
}

}  // namespace endure::lsm
