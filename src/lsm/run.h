// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// An immutable sorted run: page-resident entries plus in-memory Bloom
// filter and fence pointers. Point lookups probe the filter first (no
// I/O), then read at most one page through the fence pointers; scans read
// pages sequentially.
//
// All reads go through reusable PageBuffers: point lookups fill a
// thread-local scratch buffer (one per reader thread, reused for every
// Get on any run — lock-free snapshot readers share runs, so a per-run
// buffer would race) and each iterator owns one for its sequential
// pages — the steady state performs no heap allocations.

#ifndef ENDURE_LSM_RUN_H_
#define ENDURE_LSM_RUN_H_

#include <memory>
#include <optional>
#include <vector>

#include "lsm/bloom_filter.h"
#include "lsm/fence_pointers.h"
#include "lsm/page_store.h"

namespace endure::lsm {

/// Immutable sorted run (the on-disk unit of the LSM tree).
class Run {
 public:
  /// Takes ownership of the segment (freed on destruction).
  /// `bloom_bits_per_entry` is the *requested* filter budget the run was
  /// built at (before block rounding) — recorded in the manifest so a
  /// recovery rebuilds a filter with the identical geometry.
  Run(PageStore* store, SegmentId segment, std::unique_ptr<BloomFilter> bloom,
      std::unique_ptr<FencePointers> fences, uint64_t num_entries,
      double bloom_bits_per_entry);
  ~Run();
  ENDURE_DISALLOW_COPY_AND_ASSIGN(Run);

  uint64_t num_entries() const { return num_entries_; }
  size_t num_pages() const { return fences_->num_pages(); }
  Key min_key() const { return fences_->min_key(); }
  Key max_key() const { return fences_->max_key(); }
  const BloomFilter& bloom() const { return *bloom_; }

  /// Page index. Partitioned compactions consult it directly for split
  /// keys (first_key) and per-partition page ranges, then build bounded
  /// Iterators under IoContext::kCompaction — bypassing NewRangeIterator,
  /// which would miscount a merge subtask as a range seek.
  const FencePointers& fences() const { return *fences_; }

  /// The backing segment (recorded in the manifest so recovery can adopt
  /// the same file and rebuild this run from its pages).
  SegmentId segment() const { return segment_; }

  /// The requested (pre-rounding) Bloom budget this run was built at.
  /// BloomFilter(num_entries, this) reproduces the exact filter geometry
  /// (block count and hash count), which is what recovery relies on.
  double bloom_bits_per_entry() const { return bloom_bits_per_entry_; }

  /// Tuning epoch the run was built under: runs keep the Bloom/fence
  /// settings of their build time until the next compaction rewrites
  /// them, so after a live Reconfigure the tree stamps every newly built
  /// run with the new epoch and migration progress is the fraction of
  /// entries living in current-epoch runs.
  uint64_t tuning_epoch() const { return tuning_epoch_; }
  void set_tuning_epoch(uint64_t epoch) { tuning_epoch_ = epoch; }

  /// Point lookup. Counts bloom/fence activity and at most one page read
  /// (IoContext::kPointQuery). `use_fence_skip` short-circuits keys outside
  /// [min,max] without touching the filter. Reads go through the calling
  /// thread's reusable scratch buffer — no allocation once warm, no copy.
  /// Safe to call from any number of threads concurrently. Returns nullptr
  /// on a miss; a hit stays valid until this thread's next Get/BlindSeek
  /// on any run, or until the run is destroyed. A failed page read (I/O
  /// error, checksum mismatch) also returns nullptr and, when `io_status`
  /// is non-null, reports the failure there — callers that care about the
  /// distinction between "absent" and "unreadable" must pass it.
  const Entry* Get(Key key, bool use_fence_skip,
                   Status* io_status = nullptr) const;

  /// Sequential reader over [start_page, end_page] (inclusive); reads one
  /// page at a time into its own reusable buffer, attributing I/O to
  /// `ctx`. Move-only (it owns the page buffer).
  class Iterator {
   public:
    Iterator(const Run* run, size_t start_page, size_t end_page,
             IoContext ctx);
    Iterator(Iterator&&) = default;
    Iterator& operator=(Iterator&&) = default;

    bool Valid() const;
    const Entry& entry() const;
    void Next();

    /// OK while every page loaded cleanly. A failed page read ends the
    /// iteration (Valid() goes false) with the error recorded here —
    /// consumers that must distinguish "drained" from "died" (compaction,
    /// scans) check this after the loop.
    const Status& status() const { return status_; }

   private:
    void LoadPage(size_t page);

    const Run* run_;
    size_t end_page_;
    size_t current_page_;
    size_t index_in_page_ = 0;
    IoContext ctx_;
    PageView view_;      ///< current page (borrowed or into buffer_)
    PageBuffer buffer_;  ///< scratch for backends that materialize
    Status status_;      ///< first page-read failure, if any
    bool exhausted_ = false;
  };

  /// Full-run scan (compactions).
  Iterator NewIterator(IoContext ctx) const;

  /// Range scan over keys in [lo, hi); returns nullopt (no I/O) when the
  /// run cannot overlap. Counts one range seek when it does.
  std::optional<Iterator> NewRangeIterator(Key lo, Key hi) const;

  /// Reads the run's first page under the range-query context, counting a
  /// seek — used to emulate the cost model's one-seek-per-run assumption
  /// when fence-pointer skipping is disabled.
  void BlindSeek() const;

 private:
  PageStore* store_;
  SegmentId segment_;
  std::unique_ptr<BloomFilter> bloom_;
  std::unique_ptr<FencePointers> fences_;
  uint64_t num_entries_;
  double bloom_bits_per_entry_;
  uint64_t tuning_epoch_ = 0;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_RUN_H_
