// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Sort-merge compaction over whole runs (the classic policies of Section
// 2): reads every input page, consolidates matching keys keeping the most
// recent entry, optionally drops tombstones (bottom level), and writes the
// consolidated output run.
//
// Merges run off the tree's lock (the scheduler's prepare/execute/install
// protocol), so this layer also carries the execution controls: a shared
// token-bucket RateLimiter that bounds merge throughput in bytes/sec, and
// key-range partitioning that splits one large merge into parallel
// subtasks along fence-pointer boundaries.

#ifndef ENDURE_LSM_COMPACTION_H_
#define ENDURE_LSM_COMPACTION_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "lsm/run.h"

namespace endure {
class ThreadPool;
}  // namespace endure

namespace endure::lsm {

/// Token-bucket throttle shared by every merge of one DB: bytes drain at
/// `bytes_per_sec`, with a burst of one second's worth of tokens. Acquire
/// may drive the bucket negative — a large request waits only until the
/// bucket surfaces above zero, then borrows, which smooths big chunks
/// instead of stalling them for their full duration. Thread-safe.
class RateLimiter {
 public:
  /// `bytes_per_sec` of 0 means unlimited (Acquire returns immediately).
  explicit RateLimiter(uint64_t bytes_per_sec = 0);

  /// Blocks until `bytes` may proceed; returns the milliseconds waited.
  /// Returns 0 immediately when unlimited or stopped.
  uint64_t Acquire(uint64_t bytes);

  /// Live-retunes the rate (ApplyTuning); 0 releases all waiters.
  void set_rate(uint64_t bytes_per_sec);
  uint64_t rate() const;

  /// Permanently releases waiters and makes every future Acquire a no-op.
  /// Called on shutdown so a throttled merge cannot outlive its owner.
  void Stop();

 private:
  /// Adds tokens for the time since last_refill_ (caller holds mu_).
  void RefillLocked(std::chrono::steady_clock::time_point now);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t rate_ = 0;     ///< bytes/sec; 0 = unlimited
  double tokens_ = 0.0;   ///< may go negative (borrowed burst)
  std::chrono::steady_clock::time_point last_refill_;
  bool stopped_ = false;
};

/// Execution controls for one merge. Default-constructed limits reproduce
/// the classic behaviour exactly: no throttling, no partitioning.
struct MergeLimits {
  /// Throttle charged as the merge streams (null = unlimited). Waited
  /// milliseconds are recorded in Statistics::rate_limited_ms.
  RateLimiter* limiter = nullptr;

  /// Pool for partition subtasks. The merge thread participates itself
  /// (RunSubtasks), so a null or busy pool degrades to sequential
  /// partitions, never a deadlock.
  ThreadPool* subtask_pool = nullptr;

  /// Upper bound on key-range partitions; <= 1 disables partitioning.
  size_t max_subtasks = 1;

  /// Merges smaller than this many total input pages stay unpartitioned
  /// (partition boundaries re-read their edge pages, which only pays off
  /// on large merges); 0 disables partitioning.
  size_t min_pages_to_partition = 256;
};

/// Merges `inputs` (ordered newest source first) into a single run whose
/// Bloom filter is sized at `bits_per_entry`. All input pages are read and
/// all output pages written under IoContext::kCompaction. A successful
/// merge holding nullptr means every entry was consolidated away
/// (all-tombstone merge at the bottom level). An error — a failed input
/// page read (I/O or checksum) or a failed output write — abandons the
/// partial output run and leaves the inputs untouched.
StatusOr<std::shared_ptr<Run>> MergeRuns(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones);

/// MergeRuns under execution controls. When `limits` asks for partitioning
/// and the merge is large enough, the key space is cut at fence-pointer
/// boundaries of the largest input and the partitions merge in parallel
/// (each staging its slice in memory), then stream in key order through
/// one RunBuilder — the result is a single run, byte-identical in content
/// to the unpartitioned merge. Partitioned merges bump
/// Statistics::compactions_partitioned / compaction_subtasks.
StatusOr<std::shared_ptr<Run>> MergeRunsEx(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones, const MergeLimits& limits);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_COMPACTION_H_
