// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Sort-merge compaction over whole runs (the classic policies of Section
// 2): reads every input page, consolidates matching keys keeping the most
// recent entry, optionally drops tombstones (bottom level), and writes the
// consolidated output run.

#ifndef ENDURE_LSM_COMPACTION_H_
#define ENDURE_LSM_COMPACTION_H_

#include <memory>
#include <vector>

#include "lsm/run.h"

namespace endure::lsm {

/// Merges `inputs` (ordered newest source first) into a single run whose
/// Bloom filter is sized at `bits_per_entry`. All input pages are read and
/// all output pages written under IoContext::kCompaction. A successful
/// merge holding nullptr means every entry was consolidated away
/// (all-tombstone merge at the bottom level). An error — a failed input
/// page read (I/O or checksum) or a failed output write — abandons the
/// partial output run and leaves the inputs untouched.
StatusOr<std::shared_ptr<Run>> MergeRuns(
    PageStore* store, const std::vector<std::shared_ptr<Run>>& inputs,
    double bits_per_entry, bool drop_tombstones);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_COMPACTION_H_
