// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// The engine's record type. Keys are 64-bit integers; values are
// fixed-size payload tokens (the experiments only exercise key lookups —
// page geometry comes from Options::entries_per_page, mirroring the cost
// model's B). Sequence numbers establish recency: among entries with equal
// keys the highest sequence number wins.

#ifndef ENDURE_LSM_ENTRY_H_
#define ENDURE_LSM_ENTRY_H_

#include <cstdint>
#include <cstring>

namespace endure::lsm {

using Key = uint64_t;
using SeqNum = uint64_t;
using Value = uint64_t;

/// Entry kind: a live value or a delete marker.
enum class EntryType : uint8_t {
  kValue = 0,
  kTombstone = 1,
};

/// One key-value record.
struct Entry {
  Key key = 0;
  SeqNum seq = 0;
  Value value = 0;
  EntryType type = EntryType::kValue;

  bool is_tombstone() const { return type == EntryType::kTombstone; }
};

/// Fixed-width on-disk encoding of one entry, shared by segment pages,
/// WAL records and recovery (docs/durability.md documents the layout):
/// key u64 | seq u64 | value u64 | type u8, native (little-endian) order.
inline constexpr size_t kEncodedEntryBytes = 8 + 8 + 8 + 1;

inline void EncodeEntry(const Entry& e, char* buf) {
  std::memcpy(buf, &e.key, 8);
  std::memcpy(buf + 8, &e.seq, 8);
  std::memcpy(buf + 16, &e.value, 8);
  buf[24] = static_cast<char>(e.type);
}

inline Entry DecodeEntry(const char* buf) {
  Entry e;
  std::memcpy(&e.key, buf, 8);
  std::memcpy(&e.seq, buf + 8, 8);
  std::memcpy(&e.value, buf + 16, 8);
  e.type = static_cast<EntryType>(buf[24]);
  return e;
}

/// Orders by key ascending, then by sequence number descending (newest
/// first) — the canonical merge order.
struct EntryOrder {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.seq > b.seq;
  }
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_ENTRY_H_
