#include "lsm/statistics.h"

#include <cstdio>

namespace endure::lsm {

void Statistics::OnPageRead(IoContext ctx, uint64_t pages) {
  pages_read += pages;
  switch (ctx) {
    case IoContext::kPointQuery:
      point_pages_read += pages;
      break;
    case IoContext::kRangeQuery:
      range_pages_read += pages;
      break;
    case IoContext::kCompaction:
      compaction_pages_read += pages;
      break;
    case IoContext::kRecovery:
      recovery_pages_read += pages;
      break;
    case IoContext::kFlush:
    case IoContext::kBulkLoad:
      break;
  }
}

void Statistics::OnPageWrite(IoContext ctx, uint64_t pages) {
  pages_written += pages;
  switch (ctx) {
    case IoContext::kFlush:
      flush_pages_written += pages;
      break;
    case IoContext::kCompaction:
      compaction_pages_written += pages;
      break;
    case IoContext::kBulkLoad:
      bulk_load_pages_written += pages;
      break;
    case IoContext::kPointQuery:
    case IoContext::kRangeQuery:
    case IoContext::kRecovery:
      break;
  }
}

void Statistics::Accumulate(const Statistics& shard) {
  pages_read += shard.pages_read;
  pages_written += shard.pages_written;
  point_pages_read += shard.point_pages_read;
  range_pages_read += shard.range_pages_read;
  range_seeks += shard.range_seeks;
  flush_pages_written += shard.flush_pages_written;
  compaction_pages_read += shard.compaction_pages_read;
  compaction_pages_written += shard.compaction_pages_written;
  bulk_load_pages_written += shard.bulk_load_pages_written;
  bloom_probes += shard.bloom_probes;
  bloom_negatives += shard.bloom_negatives;
  bloom_false_positives += shard.bloom_false_positives;
  fence_skips += shard.fence_skips;
  gets += shard.gets;
  range_queries += shard.range_queries;
  writes += shard.writes;
  flushes += shard.flushes;
  compactions += shard.compactions;
  reconfigurations += shard.reconfigurations;
  migration_steps += shard.migration_steps;
  wal_records += shard.wal_records;
  wal_bytes += shard.wal_bytes;
  wal_syncs += shard.wal_syncs;
  wal_rewrites += shard.wal_rewrites;
  manifest_writes += shard.manifest_writes;
  recoveries += shard.recoveries;
  wal_replayed_entries += shard.wal_replayed_entries;
  recovery_pages_read += shard.recovery_pages_read;
  io_retries += shard.io_retries;
  checksum_failures += shard.checksum_failures;
  read_only_transitions += shard.read_only_transitions;
  compaction_stall_ms += shard.compaction_stall_ms;
  write_stalls += shard.write_stalls;
  rate_limited_ms += shard.rate_limited_ms;
  compactions_partitioned += shard.compactions_partitioned;
  compaction_subtasks += shard.compaction_subtasks;
  sched_jobs += shard.sched_jobs;
  sched_requeues += shard.sched_requeues;
  snapshot_acquires += shard.snapshot_acquires;
  cache_hits += shard.cache_hits;
  cache_misses += shard.cache_misses;
  cache_evictions += shard.cache_evictions;
  arbiter_shifts += shard.arbiter_shifts;
  // A gauge, not a sum: the deployment-wide peak is the max over sources.
  if (shard.sched_queue_peak > sched_queue_peak) {
    sched_queue_peak = shard.sched_queue_peak.load();
  }
}

Statistics Statistics::Delta(const Statistics& b) const {
  Statistics d;
  d.pages_read = pages_read - b.pages_read;
  d.pages_written = pages_written - b.pages_written;
  d.point_pages_read = point_pages_read - b.point_pages_read;
  d.range_pages_read = range_pages_read - b.range_pages_read;
  d.range_seeks = range_seeks - b.range_seeks;
  d.flush_pages_written = flush_pages_written - b.flush_pages_written;
  d.compaction_pages_read = compaction_pages_read - b.compaction_pages_read;
  d.compaction_pages_written =
      compaction_pages_written - b.compaction_pages_written;
  d.bulk_load_pages_written =
      bulk_load_pages_written - b.bulk_load_pages_written;
  d.bloom_probes = bloom_probes - b.bloom_probes;
  d.bloom_negatives = bloom_negatives - b.bloom_negatives;
  d.bloom_false_positives = bloom_false_positives - b.bloom_false_positives;
  d.fence_skips = fence_skips - b.fence_skips;
  d.gets = gets - b.gets;
  d.range_queries = range_queries - b.range_queries;
  d.writes = writes - b.writes;
  d.flushes = flushes - b.flushes;
  d.compactions = compactions - b.compactions;
  d.reconfigurations = reconfigurations - b.reconfigurations;
  d.migration_steps = migration_steps - b.migration_steps;
  d.wal_records = wal_records - b.wal_records;
  d.wal_bytes = wal_bytes - b.wal_bytes;
  d.wal_syncs = wal_syncs - b.wal_syncs;
  d.wal_rewrites = wal_rewrites - b.wal_rewrites;
  d.manifest_writes = manifest_writes - b.manifest_writes;
  d.recoveries = recoveries - b.recoveries;
  d.wal_replayed_entries = wal_replayed_entries - b.wal_replayed_entries;
  d.recovery_pages_read = recovery_pages_read - b.recovery_pages_read;
  d.io_retries = io_retries - b.io_retries;
  d.checksum_failures = checksum_failures - b.checksum_failures;
  d.read_only_transitions = read_only_transitions - b.read_only_transitions;
  d.compaction_stall_ms = compaction_stall_ms - b.compaction_stall_ms;
  d.write_stalls = write_stalls - b.write_stalls;
  d.rate_limited_ms = rate_limited_ms - b.rate_limited_ms;
  d.compactions_partitioned =
      compactions_partitioned - b.compactions_partitioned;
  d.compaction_subtasks = compaction_subtasks - b.compaction_subtasks;
  d.sched_jobs = sched_jobs - b.sched_jobs;
  d.sched_requeues = sched_requeues - b.sched_requeues;
  d.snapshot_acquires = snapshot_acquires - b.snapshot_acquires;
  d.cache_hits = cache_hits - b.cache_hits;
  d.cache_misses = cache_misses - b.cache_misses;
  d.cache_evictions = cache_evictions - b.cache_evictions;
  d.arbiter_shifts = arbiter_shifts - b.arbiter_shifts;
  // Gauge: the session's peak is simply the current peak (a baseline
  // subtraction would be meaningless for a max).
  d.sched_queue_peak = sched_queue_peak.load();
  return d;
}

std::string Statistics::ToString() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "Statistics{\n"
      "  pages_read=%llu (point=%llu range=%llu compaction=%llu)\n"
      "  pages_written=%llu (flush=%llu compaction=%llu bulk=%llu)\n"
      "  range_seeks=%llu\n"
      "  bloom: probes=%llu negatives=%llu false_positives=%llu\n"
      "  fence_skips=%llu\n"
      "  ops: gets=%llu ranges=%llu writes=%llu flushes=%llu "
      "compactions=%llu\n"
      "  reconfig: applies=%llu migration_steps=%llu\n"
      "  wal: records=%llu bytes=%llu syncs=%llu rewrites=%llu\n"
      "  durability: manifest_writes=%llu recoveries=%llu "
      "replayed=%llu recovery_pages=%llu\n"
      "  faults: io_retries=%llu checksum_failures=%llu "
      "read_only_transitions=%llu\n"
      "  scheduler: jobs=%llu requeues=%llu queue_peak=%llu\n"
      "  stalls: write_stalls=%llu stall_ms=%llu rate_limited_ms=%llu\n"
      "  partitioned: merges=%llu subtasks=%llu\n"
      "  read path: snapshot_acquires=%llu\n"
      "  cache: hits=%llu misses=%llu evictions=%llu arbiter_shifts=%llu\n}",
      static_cast<unsigned long long>(pages_read),
      static_cast<unsigned long long>(point_pages_read),
      static_cast<unsigned long long>(range_pages_read),
      static_cast<unsigned long long>(compaction_pages_read),
      static_cast<unsigned long long>(pages_written),
      static_cast<unsigned long long>(flush_pages_written),
      static_cast<unsigned long long>(compaction_pages_written),
      static_cast<unsigned long long>(bulk_load_pages_written),
      static_cast<unsigned long long>(range_seeks),
      static_cast<unsigned long long>(bloom_probes),
      static_cast<unsigned long long>(bloom_negatives),
      static_cast<unsigned long long>(bloom_false_positives),
      static_cast<unsigned long long>(fence_skips),
      static_cast<unsigned long long>(gets),
      static_cast<unsigned long long>(range_queries),
      static_cast<unsigned long long>(writes),
      static_cast<unsigned long long>(flushes),
      static_cast<unsigned long long>(compactions),
      static_cast<unsigned long long>(reconfigurations),
      static_cast<unsigned long long>(migration_steps),
      static_cast<unsigned long long>(wal_records),
      static_cast<unsigned long long>(wal_bytes),
      static_cast<unsigned long long>(wal_syncs),
      static_cast<unsigned long long>(wal_rewrites),
      static_cast<unsigned long long>(manifest_writes),
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(wal_replayed_entries),
      static_cast<unsigned long long>(recovery_pages_read),
      static_cast<unsigned long long>(io_retries),
      static_cast<unsigned long long>(checksum_failures),
      static_cast<unsigned long long>(read_only_transitions),
      static_cast<unsigned long long>(sched_jobs),
      static_cast<unsigned long long>(sched_requeues),
      static_cast<unsigned long long>(sched_queue_peak),
      static_cast<unsigned long long>(write_stalls),
      static_cast<unsigned long long>(compaction_stall_ms),
      static_cast<unsigned long long>(rate_limited_ms),
      static_cast<unsigned long long>(compactions_partitioned),
      static_cast<unsigned long long>(compaction_subtasks),
      static_cast<unsigned long long>(snapshot_acquires),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(arbiter_shifts));
  return buf;
}

std::vector<std::pair<std::string, uint64_t>> Statistics::Named() const {
  return {
      {"pages_read", pages_read},
      {"pages_written", pages_written},
      {"point_pages_read", point_pages_read},
      {"range_pages_read", range_pages_read},
      {"range_seeks", range_seeks},
      {"flush_pages_written", flush_pages_written},
      {"compaction_pages_read", compaction_pages_read},
      {"compaction_pages_written", compaction_pages_written},
      {"bulk_load_pages_written", bulk_load_pages_written},
      {"bloom_probes", bloom_probes},
      {"bloom_negatives", bloom_negatives},
      {"bloom_false_positives", bloom_false_positives},
      {"fence_skips", fence_skips},
      {"gets", gets},
      {"range_queries", range_queries},
      {"writes", writes},
      {"flushes", flushes},
      {"compactions", compactions},
      {"reconfigurations", reconfigurations},
      {"migration_steps", migration_steps},
      {"wal_records", wal_records},
      {"wal_bytes", wal_bytes},
      {"wal_syncs", wal_syncs},
      {"wal_rewrites", wal_rewrites},
      {"manifest_writes", manifest_writes},
      {"recoveries", recoveries},
      {"wal_replayed_entries", wal_replayed_entries},
      {"recovery_pages_read", recovery_pages_read},
      {"io_retries", io_retries},
      {"checksum_failures", checksum_failures},
      {"read_only_transitions", read_only_transitions},
      {"compaction_stall_ms", compaction_stall_ms},
      {"write_stalls", write_stalls},
      {"rate_limited_ms", rate_limited_ms},
      {"compactions_partitioned", compactions_partitioned},
      {"compaction_subtasks", compaction_subtasks},
      {"sched_jobs", sched_jobs},
      {"sched_requeues", sched_requeues},
      {"sched_queue_peak", sched_queue_peak},
      {"snapshot_acquires", snapshot_acquires},
      {"cache_hits", cache_hits},
      {"cache_misses", cache_misses},
      {"cache_evictions", cache_evictions},
      {"arbiter_shifts", arbiter_shifts},
  };
}

}  // namespace endure::lsm
