#include "lsm/page_store.h"

#include "lsm/options.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

namespace endure::lsm {

// ---------------------------------------------------------------- memory --

SegmentId MemPageStore::WriteSegment(const std::vector<Entry>& entries,
                                     IoContext ctx) {
  ENDURE_CHECK_MSG(!entries.empty(), "cannot write an empty segment");
  const SegmentId id = next_id_++;
  const uint64_t pages =
      (entries.size() + entries_per_page_ - 1) / entries_per_page_;
  stats_->OnPageWrite(ctx, pages);
  segments_.emplace(id, entries);
  return id;
}

void MemPageStore::ReadPage(SegmentId segment, size_t page_idx, IoContext ctx,
                            std::vector<Entry>* out) const {
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  const std::vector<Entry>& data = it->second;
  const size_t begin = page_idx * entries_per_page_;
  ENDURE_CHECK_MSG(begin < data.size(), "page index out of range");
  const size_t end = std::min(data.size(), begin + entries_per_page_);
  out->assign(data.begin() + begin, data.begin() + end);
  stats_->OnPageRead(ctx, 1);
}

void MemPageStore::FreeSegment(SegmentId segment) {
  segments_.erase(segment);
}

size_t MemPageStore::NumPages(SegmentId segment) const {
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  return (it->second.size() + entries_per_page_ - 1) / entries_per_page_;
}

size_t MemPageStore::NumEntries(SegmentId segment) const {
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  return it->second.size();
}

// ------------------------------------------------------------------ file --

namespace {

void EncodeEntry(const Entry& e, char* buf) {
  std::memcpy(buf, &e.key, 8);
  std::memcpy(buf + 8, &e.seq, 8);
  std::memcpy(buf + 16, &e.value, 8);
  buf[24] = static_cast<char>(e.type);
}

Entry DecodeEntry(const char* buf) {
  Entry e;
  std::memcpy(&e.key, buf, 8);
  std::memcpy(&e.seq, buf + 8, 8);
  std::memcpy(&e.value, buf + 16, 8);
  e.type = static_cast<EntryType>(buf[24]);
  return e;
}

}  // namespace

FilePageStore::FilePageStore(uint64_t entries_per_page, Statistics* stats,
                             std::string dir)
    : PageStore(entries_per_page, stats), dir_(std::move(dir)) {
  ENDURE_CHECK_MSG(!dir_.empty(), "empty storage dir");
  ::mkdir(dir_.c_str(), 0755);  // best effort; open() below will verify
  // Segment files get a per-process, per-instance prefix so several stores
  // (or test shards) can share a directory without clobbering each other.
  static std::atomic<uint64_t> instance_counter{0};
  instance_tag_ = std::to_string(::getpid()) + "_" +
                  std::to_string(instance_counter.fetch_add(1));
}

FilePageStore::~FilePageStore() {
  for (auto& [id, meta] : segments_) {
    if (meta.fd >= 0) ::close(meta.fd);
    ::unlink(PathFor(id).c_str());
  }
}

std::string FilePageStore::PathFor(SegmentId id) const {
  return dir_ + "/seg_" + instance_tag_ + "_" + std::to_string(id) + ".run";
}

SegmentId FilePageStore::WriteSegment(const std::vector<Entry>& entries,
                                      IoContext ctx) {
  ENDURE_CHECK_MSG(!entries.empty(), "cannot write an empty segment");
  const SegmentId id = next_id_++;
  const std::string path = PathFor(id);
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  ENDURE_CHECK_MSG(fd >= 0, "failed to create segment file");

  const size_t page_bytes = kEntryBytes * entries_per_page_;
  std::vector<char> page(page_bytes, 0);
  const uint64_t pages =
      (entries.size() + entries_per_page_ - 1) / entries_per_page_;
  for (uint64_t p = 0; p < pages; ++p) {
    std::fill(page.begin(), page.end(), 0);
    const size_t begin = p * entries_per_page_;
    const size_t end =
        std::min(entries.size(), begin + entries_per_page_);
    for (size_t i = begin; i < end; ++i) {
      EncodeEntry(entries[i], page.data() + (i - begin) * kEntryBytes);
    }
    const ssize_t written = ::pwrite(fd, page.data(), page_bytes,
                                     static_cast<off_t>(p * page_bytes));
    ENDURE_CHECK_MSG(written == static_cast<ssize_t>(page_bytes),
                     "short segment write");
  }
  stats_->OnPageWrite(ctx, pages);
  segments_.emplace(id, SegmentMeta{fd, entries.size()});
  return id;
}

void FilePageStore::ReadPage(SegmentId segment, size_t page_idx,
                             IoContext ctx, std::vector<Entry>* out) const {
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  const SegmentMeta& meta = it->second;
  const size_t begin = page_idx * entries_per_page_;
  ENDURE_CHECK_MSG(begin < meta.num_entries, "page index out of range");
  const size_t count = std::min<size_t>(entries_per_page_,
                                        meta.num_entries - begin);

  const size_t page_bytes = kEntryBytes * entries_per_page_;
  std::vector<char> page(page_bytes);
  const ssize_t got = ::pread(meta.fd, page.data(), page_bytes,
                              static_cast<off_t>(page_idx * page_bytes));
  ENDURE_CHECK_MSG(got == static_cast<ssize_t>(page_bytes),
                   "short segment read");
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(DecodeEntry(page.data() + i * kEntryBytes));
  }
  stats_->OnPageRead(ctx, 1);
}

void FilePageStore::FreeSegment(SegmentId segment) {
  auto it = segments_.find(segment);
  if (it == segments_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  ::unlink(PathFor(segment).c_str());
  segments_.erase(it);
}

size_t FilePageStore::NumPages(SegmentId segment) const {
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  return (it->second.num_entries + entries_per_page_ - 1) /
         entries_per_page_;
}

size_t FilePageStore::NumEntries(SegmentId segment) const {
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  return it->second.num_entries;
}

// --------------------------------------------------------------- factory --

std::unique_ptr<PageStore> MakePageStore(uint64_t entries_per_page,
                                         Statistics* stats, int backend,
                                         const std::string& dir) {
  if (backend == static_cast<int>(StorageBackend::kFile)) {
    return std::make_unique<FilePageStore>(entries_per_page, stats, dir);
  }
  return std::make_unique<MemPageStore>(entries_per_page, stats);
}

}  // namespace endure::lsm
