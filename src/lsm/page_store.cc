#include "lsm/page_store.h"

#include "lsm/block_cache.h"
#include "lsm/options.h"
#include "util/env.h"
#include "util/fault_injection.h"
#include "util/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace endure::lsm {

static_assert(std::is_trivially_copyable_v<Entry>,
              "page reads memcpy entries into caller buffers");

// ----------------------------------------------------------- base helpers --

void PageStore::set_block_cache(BlockCache* cache) {
  cache_ = cache;
  cache_store_id_ = cache != nullptr ? cache->RegisterStore() : 0;
}

namespace {
inline bool CacheableContext(IoContext ctx) {
  return ctx == IoContext::kPointQuery || ctx == IoContext::kRangeQuery;
}
}  // namespace

bool PageStore::CacheLookup(SegmentId segment, size_t page_idx, IoContext ctx,
                            PageBuffer* scratch) const {
  if (cache_ == nullptr || scratch == nullptr || !CacheableContext(ctx) ||
      cache_->capacity() == 0) {
    return false;
  }
  if (cache_->Lookup(cache_store_id_, segment, page_idx, scratch)) {
    ++stats_->cache_hits;
    return true;
  }
  ++stats_->cache_misses;
  return false;
}

void PageStore::CacheAdmit(SegmentId segment, size_t page_idx, IoContext ctx,
                           const Entry* entries, size_t count) const {
  if (cache_ == nullptr || !CacheableContext(ctx)) return;
  cache_->Insert(cache_store_id_, segment, page_idx, entries, count, stats_);
}

void PageStore::CacheErase(SegmentId segment) const {
  if (cache_ == nullptr) return;
  cache_->EraseSegment(cache_store_id_, segment);
}

Status PageStore::ReadPage(SegmentId segment, size_t page_idx, IoContext ctx,
                           PageBuffer* out) const {
  StatusOr<PageView> view = ReadPageView(segment, page_idx, ctx, out);
  ENDURE_RETURN_IF_ERROR(view.status());
  if (view->data != out->data()) {  // zero-copy backend: materialize
    out->Reserve(entries_per_page_);
    std::memcpy(out->data(), view->data, view->size * sizeof(Entry));
  }
  out->set_size(view->size);
  return Status::OK();
}

StatusOr<SegmentId> PageStore::WriteSegment(const std::vector<Entry>& entries,
                                            IoContext ctx) {
  ENDURE_CHECK_MSG(!entries.empty(), "cannot write an empty segment");
  std::unique_ptr<SegmentWriter> writer = NewSegmentWriter(ctx);
  for (size_t begin = 0; begin < entries.size();
       begin += entries_per_page_) {
    const size_t count =
        std::min<size_t>(entries_per_page_, entries.size() - begin);
    ENDURE_RETURN_IF_ERROR(writer->AppendPage(entries.data() + begin, count));
  }
  return writer->Seal();
}

// ---------------------------------------------------------------- memory --

class MemPageStore::Writer final : public PageStore::SegmentWriter {
 public:
  /// `data` is the slot's entry vector, cached here because the slot table
  /// may reallocate while other threads open segments — the vector itself
  /// is a stable heap allocation, so appends need no store lock.
  Writer(MemPageStore* store, SegmentId id, std::vector<Entry>* data,
         IoContext ctx)
      : store_(store), id_(id), data_(data), ctx_(ctx) {}

  ~Writer() override {
    if (!sealed_) store_->FreeSegment(id_);  // abandon
  }

  Status AppendPage(const Entry* entries, size_t count) override {
    ENDURE_CHECK_MSG(!sealed_, "writer already sealed");
    ENDURE_CHECK_MSG(count >= 1 && count <= store_->entries_per_page_,
                     "bad page entry count");
    ENDURE_CHECK_MSG(!partial_appended_,
                     "only the final page may be partial");
    partial_appended_ = count < store_->entries_per_page_;
    data_->insert(data_->end(), entries, entries + count);
    store_->stats_->OnPageWrite(ctx_, 1);
    return Status::OK();
  }

  StatusOr<SegmentId> Seal() override {
    ENDURE_CHECK_MSG(!sealed_, "writer already sealed");
    ENDURE_CHECK_MSG(!data_->empty(), "cannot seal an empty segment");
    sealed_ = true;
    return id_;
  }

 private:
  MemPageStore* store_;
  SegmentId id_;
  std::vector<Entry>* data_;
  IoContext ctx_;
  bool partial_appended_ = false;
  bool sealed_ = false;
};

std::unique_ptr<PageStore::SegmentWriter> MemPageStore::NewSegmentWriter(
    IoContext ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t slot;
  if (free_slots_.empty()) {
    ENDURE_CHECK_MSG(slots_.size() < 0xffffffffu, "too many live segments");
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slots_[slot].generation = next_generation_++;
  slots_[slot].data = std::make_unique<std::vector<Entry>>();
  const SegmentId id = (slots_[slot].generation << 32) | slot;
  return std::make_unique<Writer>(this, id, slots_[slot].data.get(), ctx);
}

const std::vector<Entry>* MemPageStore::SlotData(SegmentId segment) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t index = SlotIndex(segment);
  ENDURE_CHECK_MSG(index < slots_.size(), "unknown segment");
  const Slot& slot = slots_[index];
  ENDURE_CHECK_MSG(slot.data != nullptr &&
                       slot.generation == Generation(segment),
                   "unknown segment");
  return slot.data.get();
}

StatusOr<PageView> MemPageStore::ReadPageView(SegmentId segment,
                                              size_t page_idx, IoContext ctx,
                                              PageBuffer* scratch) const {
  // A cache hit is not a device read: no page-read accounting, the hit
  // counter tells the story. RAM pages cannot rot, so admission needs no
  // checksum gate here.
  if (CacheLookup(segment, page_idx, ctx, scratch)) {
    return PageView{scratch->data(), scratch->size()};
  }
  const std::vector<Entry>& data = *SlotData(segment);
  const size_t begin = page_idx * entries_per_page_;
  ENDURE_CHECK_MSG(begin < data.size(), "page index out of range");
  const size_t count = std::min<size_t>(entries_per_page_,
                                        data.size() - begin);
  stats_->OnPageRead(ctx, 1);
  CacheAdmit(segment, page_idx, ctx, data.data() + begin, count);
  // Resident pages are directly usable: hand out a borrowed view (stable
  // until FreeSegment) instead of copying.
  return PageView{data.data() + begin, count};
}

void MemPageStore::FreeSegment(SegmentId segment) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t index = SlotIndex(segment);
    if (index >= slots_.size()) return;
    Slot& slot = slots_[index];
    if (slot.data == nullptr || slot.generation != Generation(segment)) {
      return;
    }
    slot.data.reset();
    free_slots_.push_back(static_cast<uint32_t>(index));
  }
  CacheErase(segment);
}

size_t MemPageStore::NumPages(SegmentId segment) const {
  return (SlotData(segment)->size() + entries_per_page_ - 1) /
         entries_per_page_;
}

size_t MemPageStore::NumEntries(SegmentId segment) const {
  return SlotData(segment)->size();
}

// ------------------------------------------------------------------ file --

namespace {

constexpr size_t kPageAlign = 4096;

// Entries are serialized with the shared EncodeEntry/DecodeEntry from
// entry.h — the same layout WAL records and recovery use.

/// Page-aligned allocation (pread/pwrite buffers; alignment also keeps the
/// door open for O_DIRECT). Returns null on allocation failure (including
/// an injected one) — callers surface an IOError naming the size rather
/// than aborting.
std::unique_ptr<char, void (*)(void*)> AlignedPage(size_t bytes) {
  const size_t rounded = (bytes + kPageAlign - 1) / kPageAlign * kPageAlign;
  if (CheckFault(FaultSite::kAlloc).fires()) {
    return {nullptr, &std::free};
  }
  void* p = std::aligned_alloc(kPageAlign, rounded);
  return {static_cast<char*>(p), &std::free};
}

Status AllocFailed(size_t bytes) {
  return Status::IOError("aligned_alloc of " + std::to_string(bytes) +
                         " bytes failed");
}

std::string ErrnoName(int err) {
  return std::string(std::strerror(err)) + " (errno " +
         std::to_string(err) + ")";
}

}  // namespace

class FilePageStore::Writer final : public PageStore::SegmentWriter {
 public:
  Writer(FilePageStore* store, SegmentId id, std::string path, IoContext ctx)
      : store_(store),
        id_(id),
        path_(std::move(path)),
        ctx_(ctx),
        scratch_(nullptr, &std::free) {}

  ~Writer() override {
    if (!sealed_) {  // abandon: release the half-written file
      if (fd_ >= 0) ::close(fd_);
      if (created_) ::unlink(path_.c_str());
    }
  }

  Status AppendPage(const Entry* entries, size_t count) override {
    ENDURE_CHECK_MSG(!sealed_, "writer already sealed");
    ENDURE_CHECK_MSG(count >= 1 && count <= store_->entries_per_page_,
                     "bad page entry count");
    ENDURE_CHECK_MSG(!partial_appended_,
                     "only the final page may be partial");
    ENDURE_RETURN_IF_ERROR(EnsureReady());
    partial_appended_ = count < store_->entries_per_page_;

    const size_t page_bytes = store_->PageBytes();
    const size_t disk_bytes = store_->PageDiskBytes();
    std::memset(scratch_.get(), 0, disk_bytes);
    for (size_t i = 0; i < count; ++i) {
      EncodeEntry(entries[i], scratch_.get() + i * kEntryBytes);
    }
    // Integrity footer: entry count, then CRC over payload + count.
    const uint32_t count32 = static_cast<uint32_t>(count);
    std::memcpy(scratch_.get() + page_bytes, &count32, sizeof(count32));
    const uint32_t crc = Crc32(scratch_.get(), page_bytes + sizeof(count32));
    std::memcpy(scratch_.get() + page_bytes + sizeof(count32), &crc,
                sizeof(crc));

    const FaultOutcome fault = CheckFault(FaultSite::kSegmentWrite);
    if (fault.corrupt) {
      // Bit-rot between the CPU and the platter: the CRC above no longer
      // matches what lands on disk.
      scratch_.get()[count / 2] ^= 0x20;
    }
    // An injected torn write puts half the page on disk; an injected
    // plain error performs no I/O at all.
    size_t write_bytes = fault.short_io ? disk_bytes / 2 : disk_bytes;
    if (fault.err != 0 && !fault.short_io) write_bytes = 0;
    ssize_t written = 0;
    if (write_bytes > 0) {
      written = ::pwrite(fd_, scratch_.get(), write_bytes,
                         static_cast<off_t>(num_pages_ * disk_bytes));
      if (written < 0) {
        return Status::IOError("segment write to " + path_ + " failed: " +
                               ErrnoName(errno));
      }
    }
    if (fault.err != 0) {
      return Status::IOError("segment write to " + path_ + " failed: " +
                             ErrnoName(fault.err) + " [injected]");
    }
    if (static_cast<size_t>(written) < write_bytes) {
      return Status::IOError("short segment write to " + path_);
    }
    // An injected silent tear (short_io, no errno) falls through as
    // success — only the checksum can catch it later.
    ++num_pages_;
    num_entries_ += count;
    store_->stats_->OnPageWrite(ctx_, 1);
    return Status::OK();
  }

  StatusOr<SegmentId> Seal() override {
    ENDURE_CHECK_MSG(!sealed_, "writer already sealed");
    ENDURE_CHECK_MSG(num_pages_ > 0, "cannot seal an empty segment");
    // Persistent segments must be on the device before the manifest may
    // reference them; ephemeral stores skip the fsync (the experiments'
    // hot path). A failed fsync leaves the writer unsealed: dropping it
    // abandons the segment, so a never-synced file is never registered.
    if (store_->persistent_) {
      const FaultOutcome fault = CheckFault(FaultSite::kSegmentFsync);
      if (fault.err != 0) {
        return Status::IOError("segment fsync of " + path_ + " failed: " +
                               ErrnoName(fault.err) + " [injected]");
      }
      if (::fsync(fd_) != 0) {
        return Status::IOError("segment fsync of " + path_ + " failed: " +
                               ErrnoName(errno));
      }
    }
    sealed_ = true;
    {
      std::lock_guard<std::mutex> lock(store_->mu_);
      store_->segments_.emplace(id_, SegmentMeta{fd_, num_entries_});
    }
    return id_;
  }

 private:
  /// Lazily creates the file and the page buffer — so constructing a
  /// writer really performs no fallible work, and both failure modes
  /// surface from AppendPage as Status.
  Status EnsureReady() {
    if (fd_ < 0) {
      const FaultOutcome fault = CheckFault(FaultSite::kSegmentOpen);
      if (fault.err != 0) {
        return Status::IOError("failed to create segment file " + path_ +
                               ": " + ErrnoName(fault.err) + " [injected]");
      }
      fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
      if (fd_ < 0) {
        return Status::IOError("failed to create segment file " + path_ +
                               ": " + ErrnoName(errno));
      }
      created_ = true;
    }
    if (scratch_ == nullptr) {
      scratch_ = AlignedPage(store_->PageDiskBytes());
      if (scratch_ == nullptr) return AllocFailed(store_->PageDiskBytes());
    }
    return Status::OK();
  }

  FilePageStore* store_;
  SegmentId id_;
  std::string path_;
  int fd_ = -1;
  bool created_ = false;
  IoContext ctx_;
  std::unique_ptr<char, void (*)(void*)> scratch_;
  size_t num_pages_ = 0;
  size_t num_entries_ = 0;
  bool partial_appended_ = false;
  bool sealed_ = false;
};

FilePageStore::FilePageStore(uint64_t entries_per_page, Statistics* stats,
                             std::string dir, bool persistent)
    : PageStore(entries_per_page, stats),
      dir_(std::move(dir)),
      persistent_(persistent) {
  ENDURE_CHECK_MSG(!dir_.empty(), "empty storage dir");
  ::mkdir(dir_.c_str(), 0755);  // best effort; open() below will verify
  if (persistent_) return;  // stable names; the store owns the directory
  // Ephemeral segment files get a per-process, per-instance prefix so
  // several stores (or test shards) can share a directory without
  // clobbering each other.
  static std::atomic<uint64_t> instance_counter{0};
  instance_tag_ = std::to_string(::getpid()) + "_" +
                  std::to_string(instance_counter.fetch_add(1));
}

FilePageStore::~FilePageStore() {
  for (auto& [id, meta] : segments_) {
    if (meta.fd >= 0) ::close(meta.fd);
    if (!persistent_) ::unlink(PathFor(id).c_str());
  }
  // Deferred deletes whose manifest never got published stay on disk as
  // orphans; the next recovery's RemoveUnreferencedSegments reaps them.
}

std::string FilePageStore::PathFor(SegmentId id) const {
  if (persistent_) return dir_ + "/seg_" + std::to_string(id) + ".run";
  return dir_ + "/seg_" + instance_tag_ + "_" + std::to_string(id) + ".run";
}

std::unique_ptr<PageStore::SegmentWriter> FilePageStore::NewSegmentWriter(
    IoContext ctx) {
  SegmentId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }
  return std::make_unique<Writer>(this, id, PathFor(id), ctx);
}

FilePageStore::AlignedBuf FilePageStore::BorrowScratch() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!read_scratch_pool_.empty()) {
      AlignedBuf buf = std::move(read_scratch_pool_.back());
      read_scratch_pool_.pop_back();
      return buf;
    }
  }
  return AlignedPage(PageDiskBytes());
}

void FilePageStore::ReturnScratch(AlignedBuf buf) const {
  std::lock_guard<std::mutex> lock(mu_);
  read_scratch_pool_.push_back(std::move(buf));
}

StatusOr<PageView> FilePageStore::ReadPageView(SegmentId segment,
                                               size_t page_idx, IoContext ctx,
                                               PageBuffer* scratch) const {
  SegmentMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(segment);
    ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
    meta = it->second;
  }
  const size_t begin = page_idx * entries_per_page_;
  ENDURE_CHECK_MSG(begin < meta.num_entries, "page index out of range");
  const size_t count = std::min<size_t>(entries_per_page_,
                                        meta.num_entries - begin);

  // Cached pages were CRC-verified at admission; a hit skips the device
  // read (and any fault injected on it) entirely.
  if (CacheLookup(segment, page_idx, ctx, scratch)) {
    return PageView{scratch->data(), scratch->size()};
  }

  const size_t page_bytes = PageBytes();
  const size_t disk_bytes = PageDiskBytes();
  AlignedBuf raw = BorrowScratch();
  if (raw == nullptr) return AllocFailed(disk_bytes);
  // Hand the buffer back on every exit path. A local class inside a member
  // function shares the function's access rights, so it may call the
  // private ReturnScratch.
  struct Returner {
    const FilePageStore* store;
    AlignedBuf* buf;
    ~Returner() { store->ReturnScratch(std::move(*buf)); }
  } returner{this, &raw};
  const std::string path = PathFor(segment);
  const FaultOutcome fault = CheckFault(FaultSite::kSegmentRead);
  if (fault.err != 0) {
    return Status::IOError("segment read from " + path + " failed: " +
                           ErrnoName(fault.err) + " [injected]");
  }
  const ssize_t got = ::pread(meta.fd, raw.get(), disk_bytes,
                              static_cast<off_t>(page_idx * disk_bytes));
  if (got < 0) {
    return Status::IOError("segment read from " + path + " failed: " +
                           ErrnoName(errno));
  }
  const bool verify =
      verify_checksums_ ||
      (scrub_on_recovery_ && ctx == IoContext::kRecovery);
  if (got != static_cast<ssize_t>(disk_bytes)) {
    ++stats_->checksum_failures;
    return Status::Corruption("truncated page " + std::to_string(page_idx) +
                              " in " + path + " (" + std::to_string(got) +
                              " of " + std::to_string(disk_bytes) +
                              " bytes)");
  }
  if (verify) {
    uint32_t stored_count = 0;
    uint32_t stored_crc = 0;
    std::memcpy(&stored_count, raw.get() + page_bytes, sizeof(stored_count));
    std::memcpy(&stored_crc,
                raw.get() + page_bytes + sizeof(stored_count),
                sizeof(stored_crc));
    const uint32_t actual =
        Crc32(raw.get(), page_bytes + sizeof(stored_count));
    if (stored_crc != actual || stored_count != count) {
      ++stats_->checksum_failures;
      return Status::Corruption(
          "checksum mismatch on page " + std::to_string(page_idx) + " of " +
          path);
    }
  }
  scratch->Reserve(entries_per_page_);
  Entry* dst = scratch->data();
  for (size_t i = 0; i < count; ++i) {
    dst[i] = DecodeEntry(raw.get() + i * kEntryBytes);
  }
  scratch->set_size(count);
  stats_->OnPageRead(ctx, 1);
  // Checksum-verified admission: a page only enters the cache if this
  // read proved its CRC. With verification off the device is trusted for
  // reads but not for admission — a cached rotten page would outlive any
  // later repair of the file.
  if (verify) CacheAdmit(segment, page_idx, ctx, dst, count);
  return PageView{dst, count};
}

void FilePageStore::FreeSegment(SegmentId segment) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(segment);
    if (it == segments_.end()) return;
    if (it->second.fd >= 0) ::close(it->second.fd);
    if (persistent_) {
      // Defer the unlink: the current manifest may still reference this
      // segment, and recovery must be able to reopen it if we crash
      // before the next manifest lands. PurgePendingDeletes() reaps it
      // afterwards.
      pending_deletes_.push_back(PathFor(segment));
    } else {
      ::unlink(PathFor(segment).c_str());
    }
    segments_.erase(it);
  }
  CacheErase(segment);
}

Status FilePageStore::AdoptSegment(SegmentId id, size_t num_entries) {
  ENDURE_CHECK_MSG(persistent_, "AdoptSegment requires a persistent store");
  std::lock_guard<std::mutex> lock(mu_);
  if (num_entries == 0) {
    return Status::InvalidArgument("cannot adopt an empty segment");
  }
  if (segments_.count(id) != 0) {
    return Status::InvalidArgument("segment adopted twice: " +
                                   std::to_string(id));
  }
  const std::string path = PathFor(id);
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("missing segment file " + path);
  }
  struct stat st;
  const size_t pages =
      (num_entries + entries_per_page_ - 1) / entries_per_page_;
  if (::fstat(fd, &st) != 0 ||
      static_cast<size_t>(st.st_size) < pages * PageDiskBytes()) {
    ::close(fd);
    return Status::Corruption("segment file " + path +
                              " is shorter than the manifest records");
  }
  segments_.emplace(id, SegmentMeta{fd, num_entries});
  set_next_id(id + 1);
  return Status::OK();
}

void FilePageStore::PurgePendingDeletes() {
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(pending_deletes_);
  }
  for (const std::string& path : doomed) {
    ::unlink(path.c_str());
  }
}

Status FilePageStore::RemoveUnreferencedSegments() {
  ENDURE_CHECK_MSG(persistent_,
                   "orphan cleanup requires a persistent store");
  auto names = ListDir(dir_);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    // Persistent segment names are seg_<id>.run; everything else in the
    // directory (MANIFEST, wal.log, tmp files) is not ours to touch.
    if (name.rfind("seg_", 0) != 0 || name.size() <= 8 ||
        name.substr(name.size() - 4) != ".run") {
      continue;
    }
    char* end = nullptr;
    const unsigned long long id =
        std::strtoull(name.c_str() + 4, &end, 10);
    if (end == nullptr || std::string(end) != ".run") continue;
    bool referenced;
    {
      std::lock_guard<std::mutex> lock(mu_);
      referenced = segments_.count(static_cast<SegmentId>(id)) != 0;
    }
    if (!referenced) {
      ::unlink((dir_ + "/" + name).c_str());
    }
  }
  return Status::OK();
}

size_t FilePageStore::NumPages(SegmentId segment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  return (it->second.num_entries + entries_per_page_ - 1) /
         entries_per_page_;
}

size_t FilePageStore::NumEntries(SegmentId segment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(segment);
  ENDURE_CHECK_MSG(it != segments_.end(), "unknown segment");
  return it->second.num_entries;
}

// --------------------------------------------------------------- factory --

std::unique_ptr<PageStore> MakePageStore(uint64_t entries_per_page,
                                         Statistics* stats, int backend,
                                         const std::string& dir,
                                         bool persistent,
                                         bool verify_checksums,
                                         bool scrub_on_recovery) {
  if (backend == static_cast<int>(StorageBackend::kFile)) {
    auto store = std::make_unique<FilePageStore>(entries_per_page, stats,
                                                 dir, persistent);
    store->set_verify_checksums(verify_checksums);
    store->set_scrub_on_recovery(scrub_on_recovery);
    return store;
  }
  return std::make_unique<MemPageStore>(entries_per_page, stats);
}

}  // namespace endure::lsm
