// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Cache-line-blocked Bloom filter over 64-bit keys, one per sorted run
// (Section 2 "Optimizing Lookups"). A first hash selects one 512-bit
// (64-byte) block via fastrange reduction — a multiply-shift instead of a
// modulo — and all k probe bits land inside that block, so a membership
// test touches exactly one cache line regardless of k. The number of hash
// functions is chosen optimally, k = round(bits/n * ln 2), so the false
// positive rate tracks e^{-(m/n) ln(2)^2} (the expression the cost model
// builds on) up to the small, well-known inflation blocking introduces.
//
// Keys can be added directly (Add) or in two phases: buffer KeyHash values
// while streaming a run out, then insert them once the exact entry count
// is known (AddHash) — see RunBuilder.

#ifndef ENDURE_LSM_BLOOM_FILTER_H_
#define ENDURE_LSM_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "lsm/entry.h"

namespace endure::lsm {

/// Immutable-after-build blocked Bloom filter.
class BloomFilter {
 public:
  /// Bits per block: one cache line.
  static constexpr uint64_t kBlockBits = 512;

  /// Builds a filter sized for `expected_entries` at `bits_per_entry`
  /// (rounded up to whole blocks). A budget of zero bits produces a
  /// degenerate always-positive filter (h = 0 means "no filters" in the
  /// tuning space).
  BloomFilter(uint64_t expected_entries, double bits_per_entry);

  /// First-level hash of a key. Stable across the filter's lifetime;
  /// callers that stream entries may buffer these and insert them later
  /// via AddHash with identical results to Add(key).
  static uint64_t KeyHash(Key key);

  /// Inserts a key.
  void Add(Key key) { AddHash(KeyHash(key)); }

  /// Inserts a previously computed KeyHash.
  void AddHash(uint64_t hash);

  /// Starts pulling the (single) cache line a MayContain(key) will probe,
  /// so the fetch overlaps whatever the caller does in between.
  void Prefetch(Key key) const;

  /// Returns false only when the key was definitely never added.
  bool MayContain(Key key) const;

  /// Total bits allocated.
  uint64_t bits() const { return num_bits_; }

  /// Number of hash functions in use.
  int num_hashes() const { return num_hashes_; }

  /// Theoretical false-positive rate e^{-(m/n) ln(2)^2} for the build-time
  /// sizing (diagnostics and tests; the blocked layout's empirical FPR
  /// runs slightly above this).
  double TheoreticalFpr() const;

 private:
  uint64_t num_bits_;
  uint64_t num_blocks_;
  double bits_per_entry_;
  int num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_BLOOM_FILTER_H_
