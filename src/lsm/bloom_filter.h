// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// Standard Bloom filter over 64-bit keys with double hashing, one per
// sorted run (Section 2 "Optimizing Lookups"). The number of hash
// functions is chosen optimally, k = round(bits/n * ln 2), so the false
// positive rate follows e^{-(m/n) ln(2)^2} — the expression the cost model
// builds on.

#ifndef ENDURE_LSM_BLOOM_FILTER_H_
#define ENDURE_LSM_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "lsm/entry.h"

namespace endure::lsm {

/// Immutable-after-build Bloom filter.
class BloomFilter {
 public:
  /// Builds a filter sized for `expected_entries` at `bits_per_entry`.
  /// A budget of zero bits produces a degenerate always-positive filter
  /// (h = 0 means "no filters" in the tuning space).
  BloomFilter(uint64_t expected_entries, double bits_per_entry);

  /// Inserts a key.
  void Add(Key key);

  /// Returns false only when the key was definitely never added.
  bool MayContain(Key key) const;

  /// Total bits allocated.
  uint64_t bits() const { return num_bits_; }

  /// Number of hash functions in use.
  int num_hashes() const { return num_hashes_; }

  /// Theoretical false-positive rate e^{-(m/n) ln(2)^2} for the build-time
  /// sizing (diagnostics and tests).
  double TheoreticalFpr() const;

 private:
  uint64_t num_bits_;
  double bits_per_entry_;
  int num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_BLOOM_FILTER_H_
