#include "lsm/fence_pointers.h"

#include <algorithm>

#include "util/macros.h"

namespace endure::lsm {

FencePointers::FencePointers(std::vector<Key> first_keys, Key last_key)
    : first_keys_(std::move(first_keys)), last_key_(last_key) {
  ENDURE_CHECK_MSG(!first_keys_.empty(), "run must have at least one page");
  ENDURE_DCHECK(std::is_sorted(first_keys_.begin(), first_keys_.end()));
  ENDURE_DCHECK(first_keys_.back() <= last_key_);
}

std::optional<size_t> FencePointers::PageFor(Key key) const {
  if (key < min_key() || key > max_key()) return std::nullopt;
  // Last page whose first key is <= key.
  auto it = std::upper_bound(first_keys_.begin(), first_keys_.end(), key);
  return static_cast<size_t>(it - first_keys_.begin()) - 1;
}

std::optional<std::pair<size_t, size_t>> FencePointers::PageRange(
    Key lo, Key hi) const {
  if (hi <= lo) return std::nullopt;
  if (hi <= min_key() || lo > max_key()) return std::nullopt;
  size_t first = 0;
  if (lo > min_key()) {
    auto it = std::upper_bound(first_keys_.begin(), first_keys_.end(), lo);
    first = static_cast<size_t>(it - first_keys_.begin()) - 1;
  }
  // Last page whose first key is < hi (hi exclusive).
  auto it = std::lower_bound(first_keys_.begin(), first_keys_.end(), hi);
  const size_t last = static_cast<size_t>(it - first_keys_.begin()) - 1;
  ENDURE_DCHECK(first <= last);
  return std::make_pair(first, last);
}

}  // namespace endure::lsm
