#include "lsm/fence_pointers.h"

#include <algorithm>

#include "util/macros.h"

namespace endure::lsm {
namespace {

// Branchless lower-bound variants with midpoint prefetching: the
// data-dependent loads of a textbook binary search serialize on memory
// latency, so the compare compiles to a conditional move and both
// possible next probes are prefetched a step ahead.

/// Index of the last element <= key. Requires base[0] <= key.
size_t LastLessOrEqual(const Key* base, size_t n, Key key) {
  size_t lo = 0;
  while (n > 1) {
    const size_t half = n / 2;
    if (half > 16) {  // spans under ~2 cache lines are already in flight
      __builtin_prefetch(base + lo + half / 2);
      __builtin_prefetch(base + lo + half + (n - half) / 2);
    }
    lo = base[lo + half] <= key ? lo + half : lo;
    n -= half;
  }
  return lo;
}

/// Index of the last element < key. Requires base[0] < key.
size_t LastLess(const Key* base, size_t n, Key key) {
  size_t lo = 0;
  while (n > 1) {
    const size_t half = n / 2;
    if (half > 16) {  // spans under ~2 cache lines are already in flight
      __builtin_prefetch(base + lo + half / 2);
      __builtin_prefetch(base + lo + half + (n - half) / 2);
    }
    lo = base[lo + half] < key ? lo + half : lo;
    n -= half;
  }
  return lo;
}

}  // namespace

FencePointers::FencePointers(std::vector<Key> first_keys, Key last_key)
    : first_keys_(std::move(first_keys)), last_key_(last_key) {
  ENDURE_CHECK_MSG(!first_keys_.empty(), "run must have at least one page");
  ENDURE_DCHECK(std::is_sorted(first_keys_.begin(), first_keys_.end()));
  ENDURE_DCHECK(first_keys_.back() <= last_key_);
  top_keys_.reserve((first_keys_.size() >> kSampleShift) + 1);
  for (size_t i = 0; i < first_keys_.size(); i += size_t{1} << kSampleShift) {
    top_keys_.push_back(first_keys_[i]);
  }
}

size_t FencePointers::LastFenceLessOrEqual(Key key) const {
  const size_t top =
      LastLessOrEqual(top_keys_.data(), top_keys_.size(), key);
  const size_t lo = top << kSampleShift;
  const size_t n = std::min(size_t{1} << kSampleShift,
                            first_keys_.size() - lo);
  return lo + LastLessOrEqual(first_keys_.data() + lo, n, key);
}

size_t FencePointers::LastFenceLess(Key key) const {
  const size_t top = LastLess(top_keys_.data(), top_keys_.size(), key);
  const size_t lo = top << kSampleShift;
  const size_t n = std::min(size_t{1} << kSampleShift,
                            first_keys_.size() - lo);
  return lo + LastLess(first_keys_.data() + lo, n, key);
}

std::optional<size_t> FencePointers::PageFor(Key key) const {
  if (key < min_key() || key > max_key()) return std::nullopt;
  // Last page whose first key is <= key.
  return LastFenceLessOrEqual(key);
}

std::optional<std::pair<size_t, size_t>> FencePointers::PageRange(
    Key lo, Key hi) const {
  if (hi <= lo) return std::nullopt;
  if (hi <= min_key() || lo > max_key()) return std::nullopt;
  const size_t first = lo > min_key() ? LastFenceLessOrEqual(lo) : 0;
  // Last page whose first key is < hi (hi exclusive).
  const size_t last = LastFenceLess(hi);
  ENDURE_DCHECK(first <= last);
  return std::make_pair(first, last);
}

}  // namespace endure::lsm
