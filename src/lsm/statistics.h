// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// I/O and operation statistics — the engine-side equivalent of the RocksDB
// statistics module the paper reads its measurements from (Section 8.1):
// logical page accesses for reads, pages flushed on writes, and pages read
// and written by compactions, kept per cause so experiments can attribute
// I/O to query classes.
//
// Counters are lock-free (relaxed atomics behind a uint64_t-shaped
// wrapper) so a ShardedDB can aggregate per-shard statistics while
// background maintenance jobs are still bumping them. Relaxed ordering is
// enough: counters never gate control flow, and cross-counter invariants
// are only asserted at quiescent points (after Wait/Flush barriers).

#ifndef ENDURE_LSM_STATISTICS_H_
#define ENDURE_LSM_STATISTICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace endure::lsm {

/// A uint64_t counter that tolerates concurrent increments and reads.
/// Behaves like a plain integer in expressions (implicit conversion,
/// ++/+=/=), and is copyable — a copy snapshots the current value — so
/// `Statistics before = db->stats()` keeps working unchanged.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& other) : v_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const { return load(); }
  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_;
};

/// Why a page access happened (controls which counters are bumped).
enum class IoContext {
  kPointQuery = 0,
  kRangeQuery = 1,
  kFlush = 2,
  kCompaction = 3,
  kBulkLoad = 4,
  kRecovery = 5,  ///< segment reads while rebuilding runs at DB::Open
};

/// Aggregate counters. Still a value type: cheap to snapshot and diff
/// (copies take relaxed snapshots of each counter).
struct Statistics {
  // --- page-level I/O ---
  RelaxedCounter pages_read = 0;              ///< all page reads
  RelaxedCounter pages_written = 0;           ///< all page writes
  RelaxedCounter point_pages_read = 0;        ///< page reads serving point queries
  RelaxedCounter range_pages_read = 0;        ///< page reads serving range queries
  RelaxedCounter range_seeks = 0;             ///< runs touched by range queries
  RelaxedCounter flush_pages_written = 0;     ///< pages written by memtable flushes
  RelaxedCounter compaction_pages_read = 0;   ///< pages read by compactions
  RelaxedCounter compaction_pages_written = 0;///< pages written by compactions
  RelaxedCounter bulk_load_pages_written = 0; ///< pages written during bulk load

  // --- filter / fence behaviour ---
  RelaxedCounter bloom_probes = 0;           ///< bloom filter membership tests
  RelaxedCounter bloom_negatives = 0;        ///< probes that skipped a run
  RelaxedCounter bloom_false_positives = 0;  ///< page reads that found nothing
  RelaxedCounter fence_skips = 0;            ///< runs skipped via min/max range

  // --- operations ---
  RelaxedCounter gets = 0;
  RelaxedCounter range_queries = 0;
  RelaxedCounter writes = 0;
  RelaxedCounter flushes = 0;
  RelaxedCounter compactions = 0;

  // --- live reconfiguration ---
  RelaxedCounter reconfigurations = 0;  ///< Reconfigure/ApplyTuning calls
  RelaxedCounter migration_steps = 0;   ///< AdvanceMigration steps that did work

  // --- durability (WAL + manifest; see docs/durability.md) ---
  RelaxedCounter wal_records = 0;         ///< records appended to the WAL
  RelaxedCounter wal_bytes = 0;           ///< bytes committed to the WAL
  RelaxedCounter wal_syncs = 0;           ///< fsyncs issued on the WAL
  RelaxedCounter wal_rewrites = 0;        ///< checkpoint WAL rewrites (churn gauge)
  RelaxedCounter manifest_writes = 0;     ///< manifest versions published
  RelaxedCounter recoveries = 0;          ///< opens that recovered state
  RelaxedCounter wal_replayed_entries = 0;///< entries replayed at recovery
  RelaxedCounter recovery_pages_read = 0; ///< pages read rebuilding runs

  // --- fault tolerance (see docs/operations.md) ---
  RelaxedCounter io_retries = 0;           ///< background jobs retried after an I/O error
  RelaxedCounter checksum_failures = 0;    ///< page CRC mismatches / truncated pages
  RelaxedCounter read_only_transitions = 0;///< shards latched into read-only degraded mode

  // --- compaction scheduler (see docs/architecture.md) ---
  RelaxedCounter compaction_stall_ms = 0;  ///< ms writers stalled on backpressure
  RelaxedCounter write_stalls = 0;         ///< Put/Delete calls that stalled
  RelaxedCounter rate_limited_ms = 0;      ///< ms merges waited on the rate limiter
  RelaxedCounter compactions_partitioned = 0;///< merges split into parallel subtasks
  RelaxedCounter compaction_subtasks = 0;  ///< key-range subtasks run by partitioned merges
  RelaxedCounter sched_jobs = 0;           ///< maintenance jobs admitted to the scheduler
  RelaxedCounter sched_requeues = 0;       ///< deadline-delayed retry requeues
  RelaxedCounter sched_queue_peak = 0;     ///< max jobs waiting in the priority queue (gauge)

  // --- lock-free read path + block cache (see docs/architecture.md) ---
  RelaxedCounter snapshot_acquires = 0;  ///< read snapshots taken by Get/Scan
  RelaxedCounter cache_hits = 0;         ///< block cache page hits
  RelaxedCounter cache_misses = 0;       ///< block cache lookups that missed
  RelaxedCounter cache_evictions = 0;    ///< pages evicted by the clock hand
  RelaxedCounter arbiter_shifts = 0;     ///< memory arbiter budget rebalances

  /// Records one page read attributed to `ctx`.
  void OnPageRead(IoContext ctx, uint64_t pages = 1);

  /// Records one page write attributed to `ctx`.
  void OnPageWrite(IoContext ctx, uint64_t pages = 1);

  /// Component-wise difference (this - baseline); used to measure a single
  /// workload session.
  Statistics Delta(const Statistics& baseline) const;

  /// Component-wise sum: folds `shard` into this. Used by ShardedDB to
  /// aggregate per-shard statistics.
  void Accumulate(const Statistics& shard);

  /// Multi-line human-readable dump.
  std::string ToString() const;

  /// Flat (name, value) snapshot of every counter, in declaration order
  /// — the machine-readable form the network STATS endpoint serves (and
  /// anything else that wants counters without parsing ToString()).
  std::vector<std::pair<std::string, uint64_t>> Named() const;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_STATISTICS_H_
