// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// I/O and operation statistics — the engine-side equivalent of the RocksDB
// statistics module the paper reads its measurements from (Section 8.1):
// logical page accesses for reads, pages flushed on writes, and pages read
// and written by compactions, kept per cause so experiments can attribute
// I/O to query classes.

#ifndef ENDURE_LSM_STATISTICS_H_
#define ENDURE_LSM_STATISTICS_H_

#include <cstdint>
#include <string>

namespace endure::lsm {

/// Why a page access happened (controls which counters are bumped).
enum class IoContext {
  kPointQuery = 0,
  kRangeQuery = 1,
  kFlush = 2,
  kCompaction = 3,
  kBulkLoad = 4,
};

/// Aggregate counters. Plain struct: cheap to snapshot and diff.
struct Statistics {
  // --- page-level I/O ---
  uint64_t pages_read = 0;              ///< all page reads
  uint64_t pages_written = 0;           ///< all page writes
  uint64_t point_pages_read = 0;        ///< page reads serving point queries
  uint64_t range_pages_read = 0;        ///< page reads serving range queries
  uint64_t range_seeks = 0;             ///< runs touched by range queries
  uint64_t flush_pages_written = 0;     ///< pages written by memtable flushes
  uint64_t compaction_pages_read = 0;   ///< pages read by compactions
  uint64_t compaction_pages_written = 0;///< pages written by compactions
  uint64_t bulk_load_pages_written = 0; ///< pages written during bulk load

  // --- filter / fence behaviour ---
  uint64_t bloom_probes = 0;           ///< bloom filter membership tests
  uint64_t bloom_negatives = 0;        ///< probes that skipped a run
  uint64_t bloom_false_positives = 0;  ///< page reads that found nothing
  uint64_t fence_skips = 0;            ///< runs skipped via min/max range

  // --- operations ---
  uint64_t gets = 0;
  uint64_t range_queries = 0;
  uint64_t writes = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;

  /// Records one page read attributed to `ctx`.
  void OnPageRead(IoContext ctx, uint64_t pages = 1);

  /// Records one page write attributed to `ctx`.
  void OnPageWrite(IoContext ctx, uint64_t pages = 1);

  /// Component-wise difference (this - baseline); used to measure a single
  /// workload session.
  Statistics Delta(const Statistics& baseline) const;

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace endure::lsm

#endif  // ENDURE_LSM_STATISTICS_H_
