// Copyright (c) endure-cpp authors. Licensed under the MIT license.
//
// K-way merging over entry streams with recency-based conflict resolution:
// among entries with the same key, the stream with the lower rank (newer
// source: memtable < shallow run < deep run) wins, matching how compaction
// "consolidates entries with a matching key, retaining only the most
// recent valid entry" (Section 2).

#ifndef ENDURE_LSM_MERGE_ITERATOR_H_
#define ENDURE_LSM_MERGE_ITERATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "lsm/entry.h"

namespace endure::lsm {

/// Type-erased forward entry stream (adapts run iterators, memtable
/// iterators and vectors).
class EntryStream {
 public:
  virtual ~EntryStream() = default;
  virtual bool Valid() const = 0;
  virtual const Entry& entry() const = 0;
  virtual void Next() = 0;
};

/// Adapts any iterator with Valid()/entry()/Next().
template <typename Iter>
class StreamAdapter final : public EntryStream {
 public:
  explicit StreamAdapter(Iter iter) : iter_(std::move(iter)) {}
  bool Valid() const override { return iter_.Valid(); }
  const Entry& entry() const override { return iter_.entry(); }
  void Next() override { iter_.Next(); }

  /// The wrapped iterator — lets callers reach status/diagnostics an
  /// iterator exposes beyond the EntryStream surface (a run iterator that
  /// hit an I/O error looks exhausted; the merge's consumer must check).
  const Iter& iter() const { return iter_; }

 private:
  Iter iter_;
};

/// Stream over an in-memory vector of entries.
class VectorStream final : public EntryStream {
 public:
  explicit VectorStream(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}
  bool Valid() const override { return pos_ < entries_.size(); }
  const Entry& entry() const override { return entries_[pos_]; }
  void Next() override { ++pos_; }

 private:
  std::vector<Entry> entries_;
  size_t pos_ = 0;
};

/// Merging iterator: emits one entry per distinct key, newest-source wins.
/// Tombstones are emitted (callers decide whether to drop them).
class MergeIterator {
 public:
  /// Owning variant: takes the streams. `inputs[i]` has rank i: lower
  /// rank = more recent source.
  explicit MergeIterator(std::vector<std::unique_ptr<EntryStream>> inputs);

  /// Non-owning variant for allocation-lean callers: the streams must
  /// outlive the iterator. Rank semantics as above; null entries allowed.
  explicit MergeIterator(std::vector<EntryStream*> inputs);

  bool Valid() const;
  const Entry& entry() const;
  void Next();

 private:
  /// Advances to the next distinct key, resolving conflicts by rank.
  void FindNext();

  std::vector<std::unique_ptr<EntryStream>> owned_;
  std::vector<EntryStream*> inputs_;
  Entry current_;
  bool valid_ = false;
};

/// Drains a merge iterator into a vector, optionally dropping tombstones
/// (used by compactions into the bottom level and by range queries).
std::vector<Entry> DrainMerge(MergeIterator* merge, bool drop_tombstones);

}  // namespace endure::lsm

#endif  // ENDURE_LSM_MERGE_ITERATOR_H_
